//! Dense vector (BLAS-1) kernels, generic over the working precision.
//!
//! Reductions (dot products, norms) accumulate in [`Scalar::Accum`] — fp32
//! for fp16 vectors, matching how the paper treats reduction kernels (they
//! are kept out of pure fp16; the innermost Richardson solver avoids them
//! entirely, and the fp32 FGMRES levels accumulate in fp32).  Element-wise
//! updates (axpy and friends) are carried out in the vector precision itself.
//!
//! Each kernel has a sequential and a rayon-parallel variant plus a
//! size-dispatching wrapper, mirroring the SpMV module.

use f3r_precision::Scalar;
use rayon::prelude::*;

/// Vector length above which the dispatching wrappers use rayon.
pub const PAR_LEN_THRESHOLD: usize = 1 << 15;

/// Minimum elements per rayon task.
const MIN_LEN_PER_TASK: usize = 1 << 12;

/// Dot product `xᵀ y`, accumulated in `T::Accum` and returned as `f64`.
#[must_use]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    if x.len() >= PAR_LEN_THRESHOLD {
        x.par_chunks(MIN_LEN_PER_TASK)
            .zip(y.par_chunks(MIN_LEN_PER_TASK))
            .map(|(xc, yc)| dot_seq_accum(xc, yc))
            .sum()
    } else {
        dot_seq_accum(x, y)
    }
}

fn dot_seq_accum<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    let mut acc = <T::Accum as Scalar>::zero();
    for (&a, &b) in x.iter().zip(y.iter()) {
        let a = <T::Accum as Scalar>::from_f64(a.to_f64());
        let b = <T::Accum as Scalar>::from_f64(b.to_f64());
        acc = a.mul_add(b, acc);
    }
    acc.to_f64()
}

/// Euclidean norm `‖x‖₂`, accumulated in `T::Accum`.
#[must_use]
pub fn norm2<T: Scalar>(x: &[T]) -> f64 {
    dot(x, x).sqrt()
}

/// `y ← y + alpha * x`.
pub fn axpy<T: Scalar>(alpha: f64, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let a = T::from_f64(alpha);
    if x.len() >= PAR_LEN_THRESHOLD {
        y.par_iter_mut()
            .with_min_len(MIN_LEN_PER_TASK)
            .zip(x.par_iter())
            .for_each(|(yi, &xi)| *yi = xi.mul_add(a, *yi));
    } else {
        for (yi, &xi) in y.iter_mut().zip(x.iter()) {
            *yi = xi.mul_add(a, *yi);
        }
    }
}

/// `y ← alpha * x + beta * y`.
pub fn axpby<T: Scalar>(alpha: f64, x: &[T], beta: f64, y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    let a = T::from_f64(alpha);
    let b = T::from_f64(beta);
    if x.len() >= PAR_LEN_THRESHOLD {
        y.par_iter_mut()
            .with_min_len(MIN_LEN_PER_TASK)
            .zip(x.par_iter())
            .for_each(|(yi, &xi)| *yi = xi * a + *yi * b);
    } else {
        for (yi, &xi) in y.iter_mut().zip(x.iter()) {
            *yi = xi * a + *yi * b;
        }
    }
}

/// `w ← alpha * x + beta * y` (three-operand form used by CG/BiCGStab).
pub fn waxpby<T: Scalar>(alpha: f64, x: &[T], beta: f64, y: &[T], w: &mut [T]) {
    assert_eq!(x.len(), y.len(), "waxpby: length mismatch");
    assert_eq!(x.len(), w.len(), "waxpby: length mismatch");
    let a = T::from_f64(alpha);
    let b = T::from_f64(beta);
    if x.len() >= PAR_LEN_THRESHOLD {
        w.par_iter_mut()
            .with_min_len(MIN_LEN_PER_TASK)
            .enumerate()
            .for_each(|(i, wi)| *wi = x[i] * a + y[i] * b);
    } else {
        for i in 0..x.len() {
            w[i] = x[i] * a + y[i] * b;
        }
    }
}

/// `x ← alpha * x`.
pub fn scale<T: Scalar>(alpha: f64, x: &mut [T]) {
    let a = T::from_f64(alpha);
    if x.len() >= PAR_LEN_THRESHOLD {
        x.par_iter_mut()
            .with_min_len(MIN_LEN_PER_TASK)
            .for_each(|xi| *xi *= a);
    } else {
        for xi in x.iter_mut() {
            *xi *= a;
        }
    }
}

/// Set every element of `x` to zero.
pub fn set_zero<T: Scalar>(x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi = T::zero();
    }
}

/// Element-wise product `z ← x ⊙ y` (used by diagonal preconditioning).
pub fn hadamard<T: Scalar>(x: &[T], y: &[T], z: &mut [T]) {
    assert_eq!(x.len(), y.len(), "hadamard: length mismatch");
    assert_eq!(x.len(), z.len(), "hadamard: length mismatch");
    for i in 0..x.len() {
        z[i] = x[i] * y[i];
    }
}

/// Maximum absolute entry `‖x‖_∞`.
#[must_use]
pub fn norm_inf<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.to_f64().abs()).fold(0.0, f64::max)
}

/// Sum of the entries, accumulated in `f64`.
#[must_use]
pub fn sum<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.to_f64()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use half::f16;

    #[test]
    fn dot_and_norm_small() {
        let x = vec![1.0f64, 2.0, 3.0];
        let y = vec![4.0f64, -5.0, 6.0];
        assert!((dot(&x, &y) - 12.0).abs() < 1e-14);
        assert!((norm2(&x) - 14.0f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn dot_parallel_matches_serial() {
        let n = 100_000;
        let x: Vec<f64> = (0..n).map(|i| ((i % 97) as f64) * 1e-3).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i % 89) as f64) * 1e-3).collect();
        let serial = dot_seq_accum(&x, &y);
        let par = dot(&x, &y);
        assert!((serial - par).abs() < 1e-9 * serial.abs());
    }

    #[test]
    fn fp16_dot_accumulates_in_fp32() {
        // 4096 ones: a pure fp16 accumulation would saturate at 2048
        // (adding 1 to 2048 in fp16 is a no-op); fp32 accumulation is exact.
        let x = vec![f16::from_f32(1.0); 4096];
        assert_eq!(dot(&x, &x), 4096.0);
    }

    #[test]
    fn axpy_variants() {
        let x = vec![1.0f32, 2.0, 3.0];
        let mut y = vec![10.0f32, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);

        let mut y2 = vec![10.0f32, 20.0, 30.0];
        axpby(2.0, &x, 0.5, &mut y2);
        assert_eq!(y2, vec![7.0, 14.0, 21.0]);

        let mut w = vec![0.0f32; 3];
        waxpby(1.0, &x, -1.0, &y, &mut w);
        assert_eq!(w, vec![-11.0, -22.0, -33.0]);
    }

    #[test]
    fn scale_zero_hadamard() {
        let mut x = vec![1.0f64, -2.0, 3.0];
        scale(3.0, &mut x);
        assert_eq!(x, vec![3.0, -6.0, 9.0]);
        let y = vec![2.0f64, 0.5, 1.0];
        let mut z = vec![0.0f64; 3];
        hadamard(&x, &y, &mut z);
        assert_eq!(z, vec![6.0, -3.0, 9.0]);
        set_zero(&mut x);
        assert_eq!(x, vec![0.0; 3]);
    }

    #[test]
    fn inf_norm_and_sum() {
        let x = vec![1.0f64, -5.0, 3.0];
        assert_eq!(norm_inf(&x), 5.0);
        assert_eq!(sum(&x), -1.0);
        assert_eq!(norm_inf::<f64>(&[]), 0.0);
    }

    #[test]
    fn large_parallel_axpy_matches_serial() {
        let n = 70_000;
        let x: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
        let mut y1: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let mut y2 = y1.clone();
        // force serial by chunking manually
        for (yi, &xi) in y1.iter_mut().zip(x.iter()) {
            *yi = xi.mul_add(0.25, *yi);
        }
        axpy(0.25, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_dot_panics() {
        let _ = dot(&[1.0f64, 2.0], &[1.0f64]);
    }
}
