//! Coordinate-format (COO) sparse matrix builder.
//!
//! COO is only used as an assembly format: the problem generators and the
//! Matrix Market reader push `(row, col, value)` triplets into a
//! [`CooMatrix`], which is then converted into the compressed sparse row
//! format ([`crate::csr::CsrMatrix`]) used by every kernel in the workspace.

use f3r_precision::Scalar;

use crate::csr::CsrMatrix;

/// A coordinate-format sparse matrix used for assembly.
///
/// Duplicate entries are allowed and are summed when converting to CSR,
/// which is the usual finite-element/stencil assembly convention.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T> {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(u32, u32, T)>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Create an empty `n_rows x n_cols` COO matrix.
    ///
    /// # Panics
    /// Panics if either dimension exceeds `u32::MAX` (indices are stored as
    /// 32-bit integers, following the paper's storage convention).
    #[must_use]
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        assert!(n_rows <= u32::MAX as usize, "row count exceeds u32 index range");
        assert!(n_cols <= u32::MAX as usize, "column count exceeds u32 index range");
        Self {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Create an empty COO matrix with room for `cap` entries.
    #[must_use]
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        let mut m = Self::new(n_rows, n_cols);
        m.entries.reserve(cap);
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of (possibly duplicated) stored entries.
    #[must_use]
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }

    /// Append the triplet `(row, col, value)`.
    ///
    /// # Panics
    /// Panics if `row`/`col` are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.n_rows, "row {row} out of bounds ({})", self.n_rows);
        assert!(col < self.n_cols, "col {col} out of bounds ({})", self.n_cols);
        self.entries.push((row as u32, col as u32, value));
    }

    /// Append the triplet and its transpose `(col, row, value)`; convenient
    /// for assembling symmetric operators from their lower triangle.
    pub fn push_sym(&mut self, row: usize, col: usize, value: T) {
        self.push(row, col, value);
        if row != col {
            self.push(col, row, value);
        }
    }

    /// Access the raw triplets.
    #[must_use]
    pub fn entries(&self) -> &[(u32, u32, T)] {
        &self.entries
    }

    /// Convert to CSR, sorting entries and summing duplicates.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; self.n_rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(entries.len());
        let mut values: Vec<T> = Vec::with_capacity(entries.len());

        let mut i = 0;
        while i < entries.len() {
            let (r, c, mut v) = entries[i];
            let mut j = i + 1;
            while j < entries.len() && entries[j].0 == r && entries[j].1 == c {
                v += entries[j].2;
                j += 1;
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r as usize + 1] += 1;
            i = j;
        }
        for r in 0..self.n_rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix::from_parts(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_and_sums_duplicates() {
        let mut coo = CooMatrix::<f64>::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0); // duplicate, summed
        coo.push(1, 2, 4.0);
        coo.push(2, 1, -1.0);
        coo.push(2, 2, 5.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.get(0, 0), Some(3.0));
        assert_eq!(csr.get(1, 2), Some(4.0));
        assert_eq!(csr.get(2, 1), Some(-1.0));
        assert_eq!(csr.get(2, 2), Some(5.0));
        assert_eq!(csr.get(1, 1), None);
    }

    #[test]
    fn push_sym_mirrors_off_diagonal() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        coo.push_sym(0, 0, 2.0);
        coo.push_sym(1, 0, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), Some(-1.0));
        assert_eq!(csr.get(1, 0), Some(-1.0));
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut coo = CooMatrix::<f32>::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(3, 3, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row_entries(1).0.len(), 0);
        assert_eq!(csr.row_entries(2).0.len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        coo.push(2, 0, 1.0);
    }
}
