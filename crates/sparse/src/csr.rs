//! Compressed sparse row (CSR) matrix storage.
//!
//! CSR is the working format of the CPU experiments in the paper (Section
//! 5.1): values in the working precision, 32-bit column indices, and a row
//! pointer array.  The type is generic over the value precision so that the
//! same matrix can be stored in fp64, fp32 and fp16 copies
//! ([`CsrMatrix::to_precision`]), exactly as F3R requires (Table 1).

use f3r_precision::{Precision, Scalar};

/// A sparse matrix in compressed sparse row format with 32-bit column
/// indices.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Build a CSR matrix from raw parts, validating the structure.
    ///
    /// # Panics
    /// Panics if the row pointer is not monotone, if its last entry does not
    /// equal `col_idx.len()`, if `col_idx` and `values` differ in length, or
    /// if any column index is out of range.
    #[must_use]
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr must have n_rows + 1 entries");
        assert_eq!(col_idx.len(), values.len(), "col_idx/values length mismatch");
        assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len(), "row_ptr end mismatch");
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr must be monotone");
        assert!(
            col_idx.iter().all(|&c| (c as usize) < n_cols),
            "column index out of range"
        );
        Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let row_ptr = (0..=n).collect();
        let col_idx = (0..n as u32).collect();
        let values = vec![T::one(); n];
        Self::from_parts(n, n, row_ptr, col_idx, values)
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Average number of stored nonzeros per row.
    #[must_use]
    pub fn nnz_per_row(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.n_rows as f64
        }
    }

    /// Raw row pointer array (length `n_rows + 1`).
    #[must_use]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[must_use]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Raw value array.
    #[must_use]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the value array (the sparsity pattern is fixed).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Column indices and values of row `row`.
    #[must_use]
    pub fn row_entries(&self, row: usize) -> (&[u32], &[T]) {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Value stored at `(row, col)`, or `None` if the position is not in the
    /// sparsity pattern.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<T> {
        let (cols, vals) = self.row_entries(row);
        cols.iter().position(|&c| c as usize == col).map(|p| vals[p])
    }

    /// Copy of the main diagonal as a dense vector (missing diagonal entries
    /// yield zero).
    #[must_use]
    pub fn diagonal(&self) -> Vec<T> {
        let n = self.n_rows.min(self.n_cols);
        let mut d = vec![T::zero(); n];
        for (i, di) in d.iter_mut().enumerate() {
            if let Some(v) = self.get(i, i) {
                *di = v;
            }
        }
        d
    }

    /// Convert the stored values to another precision, keeping the pattern.
    ///
    /// This is the "cast the preconditioner / matrix values to fp32 or fp16"
    /// operation used throughout Section 5 of the paper.
    #[must_use]
    pub fn to_precision<D: Scalar>(&self) -> CsrMatrix<D> {
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|v| D::from_f64(v.to_f64())).collect(),
        }
    }

    /// Transpose (explicit, builds a new matrix).
    #[must_use]
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut row_counts = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            row_counts[c as usize + 1] += 1;
        }
        for i in 0..self.n_cols {
            row_counts[i + 1] += row_counts[i];
        }
        let row_ptr = row_counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![T::zero(); self.nnz()];
        let mut next = row_counts;
        for row in 0..self.n_rows {
            let (cols, vals) = self.row_entries(row);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let dst = next[c as usize];
                col_idx[dst] = row as u32;
                values[dst] = v;
                next[c as usize] += 1;
            }
        }
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// `true` if the matrix is numerically symmetric to relative tolerance
    /// `tol` (pattern-symmetric and `|a_ij - a_ji| <= tol * max|a|`).
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let at = self.transpose();
        if at.row_ptr != self.row_ptr || at.col_idx != self.col_idx {
            // Patterns differ structurally; still possible to be numerically
            // symmetric if mismatched entries are zero, but we treat that as
            // non-symmetric (generators always produce pattern-symmetric
            // matrices when they are symmetric).
            return false;
        }
        let scale = self
            .values
            .iter()
            .map(|v| v.to_f64().abs())
            .fold(0.0f64, f64::max)
            .max(1e-300);
        self.values
            .iter()
            .zip(at.values.iter())
            .all(|(a, b)| (a.to_f64() - b.to_f64()).abs() <= tol * scale)
    }

    /// Largest absolute value of any stored entry.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.values
            .iter()
            .map(|v| v.to_f64().abs())
            .fold(0.0f64, f64::max)
    }

    /// Multiply every diagonal entry by `alpha`, in place.
    ///
    /// This is the α_ILU / α_AINV stabilisation used in Section 5: the
    /// factorisation is applied to a matrix whose diagonal has been boosted
    /// by a problem-dependent factor.
    pub fn scale_diagonal(&mut self, alpha: f64) {
        for row in 0..self.n_rows {
            let start = self.row_ptr[row];
            let end = self.row_ptr[row + 1];
            for k in start..end {
                if self.col_idx[k] as usize == row {
                    let v = self.values[k].to_f64() * alpha;
                    self.values[k] = T::from_f64(v);
                }
            }
        }
    }

    /// Return `D_r A D_c` where `D_r`, `D_c` are diagonal matrices given as
    /// dense vectors (entries in `f64`).
    ///
    /// # Panics
    /// Panics if the scaling vectors do not match the matrix dimensions.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // row indexes three parallel arrays
    pub fn scale_rows_cols(&self, row_scale: &[f64], col_scale: &[f64]) -> CsrMatrix<T> {
        assert_eq!(row_scale.len(), self.n_rows);
        assert_eq!(col_scale.len(), self.n_cols);
        let mut out = self.clone();
        for row in 0..self.n_rows {
            let start = self.row_ptr[row];
            let end = self.row_ptr[row + 1];
            for k in start..end {
                let c = self.col_idx[k] as usize;
                let v = self.values[k].to_f64() * row_scale[row] * col_scale[c];
                out.values[k] = T::from_f64(v);
            }
        }
        out
    }

    /// Bytes used to store the matrix (values + 32-bit column indices +
    /// 32-bit row pointers, matching the paper's storage convention).
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        (self.nnz() as u64) * (T::PRECISION.bytes() as u64 + 4) + 4 * (self.n_rows as u64 + 1)
    }

    /// The precision in which values are stored.
    #[must_use]
    pub fn value_precision(&self) -> Precision {
        T::PRECISION
    }

    /// Extract the lower triangle (including the diagonal) as a new CSR
    /// matrix. Used by the IC(0)/ILU(0) factorisations.
    #[must_use]
    pub fn lower_triangle(&self) -> CsrMatrix<T> {
        self.filter(|r, c| c <= r)
    }

    /// Extract the strict upper triangle as a new CSR matrix.
    #[must_use]
    pub fn strict_upper_triangle(&self) -> CsrMatrix<T> {
        self.filter(|r, c| c > r)
    }

    /// Keep only entries for which `keep(row, col)` returns true.
    #[must_use]
    pub fn filter(&self, keep: impl Fn(usize, usize) -> bool) -> CsrMatrix<T> {
        let mut row_ptr = vec![0usize; self.n_rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for row in 0..self.n_rows {
            let (cols, vals) = self.row_entries(row);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if keep(row, c as usize) {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr[row + 1] = col_idx.len();
        }
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Extract the square diagonal sub-block spanning rows/columns
    /// `[start, end)` as a standalone CSR matrix (entries outside the block
    /// are dropped).  Used by the block-Jacobi preconditioner.
    #[must_use]
    pub fn diagonal_block(&self, start: usize, end: usize) -> CsrMatrix<T> {
        assert!(start <= end && end <= self.n_rows.min(self.n_cols));
        let n = end - start;
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for (local, row) in (start..end).enumerate() {
            let (cols, vals) = self.row_entries(row);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let c = c as usize;
                if c >= start && c < end {
                    col_idx.push((c - start) as u32);
                    values.push(v);
                }
            }
            row_ptr[local + 1] = col_idx.len();
        }
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A CSR matrix stored in precision `S` with one power-of-two `f64`
/// amplitude scale per row; the represented row is `row_scale * stored_row`.
///
/// This is the matrix-side mirror of the compressed Krylov basis
/// ([`narrow_scaled_into`](crate::blas1::narrow_scaled_into)'s convention):
/// when `S` is narrower than `f64`, every stored magnitude is at most one
/// (division by a power of two is exact, so the only per-element rounding is
/// the single narrowing into `S`), which keeps fp16 matrix storage finite
/// and accurate for *any* entry dynamic range across rows — general Matrix
/// Market inputs would otherwise silently overflow to ±∞ or flush to zero in
/// an unscaled fp16 copy.  When `S` is `f64` (the construction precision)
/// the values are stored verbatim with unit scales: bit-lossless, no
/// amplitude-reduction pass.
///
/// The SpMV kernels ([`crate::spmv::spmv_scaled`] and friends) consume the
/// stored form directly: each stored element is widened exactly once into
/// the row accumulator and the row scale is folded into the accumulated sum
/// once per row, so scaled storage streams at the storage precision's memory
/// bandwidth with one extra multiply per row.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledCsr<S> {
    matrix: CsrMatrix<S>,
    row_scales: Vec<f64>,
}

impl<S: Scalar> ScaledCsr<S> {
    /// Build the scaled storage-precision copy of `a`.
    #[must_use]
    pub fn from_f64(a: &CsrMatrix<f64>) -> Self {
        if S::PRECISION == Precision::Fp64 {
            // Verbatim bit-lossless fast path: f64 storage has the source's
            // full exponent range, so no amplitude normalisation is needed.
            return Self {
                matrix: a.to_precision::<S>(),
                row_scales: vec![1.0; a.n_rows()],
            };
        }
        let row_scales = crate::scaling::pow2_row_scales(a);
        let mut values = Vec::with_capacity(a.nnz());
        for (row, &scale) in row_scales.iter().enumerate() {
            let (_, vals) = a.row_entries(row);
            // Division by a power of two is exact in f64; the narrowing into
            // S is the single per-element rounding.  Divide rather than
            // multiply by the reciprocal: for subnormal row amplitudes
            // (scale ≤ 2^-1023) the reciprocal overflows to +∞ while the
            // division stays exact.
            values.extend(vals.iter().map(|&v| S::from_f64(v / scale)));
        }
        Self {
            matrix: CsrMatrix {
                n_rows: a.n_rows,
                n_cols: a.n_cols,
                row_ptr: a.row_ptr.clone(),
                col_idx: a.col_idx.clone(),
                values,
            },
            row_scales,
        }
    }

    /// The stored (row-normalised) matrix.
    #[must_use]
    pub fn matrix(&self) -> &CsrMatrix<S> {
        &self.matrix
    }

    /// The per-row power-of-two amplitude scales.
    #[must_use]
    pub fn row_scales(&self) -> &[f64] {
        &self.row_scales
    }

    /// Split into the stored matrix and the row scales.
    #[must_use]
    pub fn into_parts(self) -> (CsrMatrix<S>, Vec<f64>) {
        (self.matrix, self.row_scales)
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.matrix.n_rows()
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.matrix.n_cols()
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// The precision in which values are stored.
    #[must_use]
    pub fn value_precision(&self) -> Precision {
        S::PRECISION
    }

    /// The *represented* value at `(row, col)` — `row_scale * stored` — or
    /// `None` outside the sparsity pattern (diagnostics and tests; kernels
    /// never reconstruct values element-wise like this).
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        self.matrix
            .get(row, col)
            .map(|v| v.to_f64() * self.row_scales[row])
    }

    /// Bytes used by the stored values/indices plus the per-row `f64` scales.
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        self.matrix.storage_bytes() + 8 * self.n_rows() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use half::f16;

    fn sample() -> CsrMatrix<f64> {
        // [ 4 -1  0]
        // [-1  4 -1]
        // [ 0 -1  4]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 4.0);
        }
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 2, -1.0);
        coo.push(2, 1, -1.0);
        coo.to_csr()
    }

    #[test]
    fn basic_accessors() {
        let a = sample();
        assert_eq!(a.n_rows(), 3);
        assert_eq!(a.n_cols(), 3);
        assert_eq!(a.nnz(), 7);
        assert!((a.nnz_per_row() - 7.0 / 3.0).abs() < 1e-12);
        assert!(a.is_square());
        assert_eq!(a.diagonal(), vec![4.0, 4.0, 4.0]);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.value_precision(), Precision::Fp64);
    }

    #[test]
    fn identity_matrix() {
        let i = CsrMatrix::<f32>::identity(4);
        assert_eq!(i.nnz(), 4);
        for k in 0..4 {
            assert_eq!(i.get(k, k), Some(1.0));
        }
    }

    #[test]
    fn precision_cast_keeps_pattern_and_rounds_values() {
        let a = sample();
        let a16: CsrMatrix<f16> = a.to_precision();
        assert_eq!(a16.nnz(), a.nnz());
        assert_eq!(a16.row_ptr(), a.row_ptr());
        assert_eq!(a16.col_idx(), a.col_idx());
        assert_eq!(a16.get(0, 0).map(f3r_precision::Scalar::to_f64), Some(4.0));
        assert_eq!(a16.value_precision(), Precision::Fp16);
    }

    #[test]
    fn transpose_of_symmetric_matrix_is_identical() {
        let a = sample();
        let at = a.transpose();
        assert_eq!(a, at);
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn transpose_of_nonsymmetric_matrix() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 5.0);
        coo.push(1, 0, 2.0);
        let a = coo.to_csr();
        let at = a.transpose();
        assert_eq!(at.n_rows(), 3);
        assert_eq!(at.n_cols(), 2);
        assert_eq!(at.get(2, 0), Some(5.0));
        assert_eq!(at.get(0, 1), Some(2.0));
        assert!(!a.is_symmetric(1e-14));
    }

    #[test]
    fn scale_diagonal_only_touches_diagonal() {
        let mut a = sample();
        a.scale_diagonal(1.1);
        assert!((a.get(0, 0).unwrap() - 4.4).abs() < 1e-12);
        assert_eq!(a.get(0, 1), Some(-1.0));
    }

    #[test]
    fn scale_rows_cols_applies_jacobi_scaling() {
        let a = sample();
        let d: Vec<f64> = a.diagonal().iter().map(|v| 1.0 / v.sqrt()).collect();
        let scaled = a.scale_rows_cols(&d, &d);
        for i in 0..3 {
            assert!((scaled.get(i, i).unwrap() - 1.0).abs() < 1e-12);
        }
        assert!(scaled.is_symmetric(1e-14));
    }

    #[test]
    fn triangles_partition_the_matrix() {
        let a = sample();
        let l = a.lower_triangle();
        let u = a.strict_upper_triangle();
        assert_eq!(l.nnz() + u.nnz(), a.nnz());
        assert_eq!(l.get(1, 0), Some(-1.0));
        assert_eq!(l.get(0, 1), None);
        assert_eq!(u.get(0, 1), Some(-1.0));
    }

    #[test]
    fn diagonal_block_extraction() {
        let a = sample();
        let b = a.diagonal_block(1, 3);
        assert_eq!(b.n_rows(), 2);
        assert_eq!(b.get(0, 0), Some(4.0));
        assert_eq!(b.get(0, 1), Some(-1.0));
        assert_eq!(b.get(1, 0), Some(-1.0));
        // the (1,0) entry of A (outside the block) is dropped
        assert_eq!(b.nnz(), 4);
    }

    #[test]
    fn storage_bytes_depends_on_precision() {
        let a = sample();
        let a32: CsrMatrix<f32> = a.to_precision();
        let a16: CsrMatrix<f16> = a.to_precision();
        assert!(a16.storage_bytes() < a32.storage_bytes());
        assert!(a32.storage_bytes() < a.storage_bytes());
        assert_eq!(a.storage_bytes(), 7 * 12 + 4 * 4);
    }

    fn wide_range() -> CsrMatrix<f64> {
        // Entries spanning 1e-12 .. 1e12 within and across rows; the unscaled
        // fp16 copy of this matrix is pure ±inf / 0.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0e12);
        coo.push(0, 1, -3.0e11);
        coo.push(1, 1, 5.0e-12);
        coo.push(1, 2, 1.0e-12);
        coo.push(2, 2, 1.0);
        coo.to_csr()
    }

    #[test]
    fn scaled_f64_storage_is_verbatim_with_unit_scales() {
        let a = wide_range();
        let s = ScaledCsr::<f64>::from_f64(&a);
        assert_eq!(s.matrix(), &a);
        assert!(s.row_scales().iter().all(|&r| r == 1.0));
        assert_eq!(s.get(0, 0), Some(2.0e12));
        assert_eq!(s.storage_bytes(), a.storage_bytes() + 8 * 3);
    }

    #[test]
    fn scaled_fp16_storage_survives_wide_dynamic_range() {
        let a = wide_range();
        let unscaled: CsrMatrix<f16> = a.to_precision();
        assert!(unscaled.values().iter().any(|v| !v.to_f64().is_finite()));
        let s = ScaledCsr::<f16>::from_f64(&a);
        assert_eq!(s.value_precision(), Precision::Fp16);
        for (&stored, _) in s.matrix().values().iter().zip(a.values()) {
            assert!(stored.to_f64().is_finite());
            assert!(stored.to_f64().abs() <= 1.0);
        }
        // Represented values match the source to fp16's relative accuracy of
        // the row amplitude.
        for row in 0..3 {
            let (cols, vals) = a.row_entries(row);
            let amax = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let got = s.get(row, c as usize).unwrap();
                assert!(
                    (got - v).abs() <= amax * 2.0f64.powi(-10),
                    "({row},{c}): {got} vs {v}"
                );
            }
        }
        assert_eq!(s.row_scales().len(), 3);
        assert_eq!(s.row_scales()[2], 1.0);
    }

    #[test]
    fn scaled_storage_survives_subnormal_row_amplitudes() {
        // A row whose amplitude is subnormal: 1/scale overflows to +inf, but
        // the exact power-of-two division must still store finite values
        // with |stored| <= 1.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0e-310);
        coo.push(0, 1, -0.5e-310);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        let s = ScaledCsr::<f16>::from_f64(&a);
        assert!(s.row_scales()[0].is_finite() && s.row_scales()[0] > 0.0);
        for v in s.matrix().values() {
            assert!(v.to_f64().is_finite());
            assert!(v.to_f64().abs() <= 1.0);
        }
        assert!((s.get(0, 0).unwrap() - 1.0e-310).abs() <= 1.0e-310 * 2.0f64.powi(-10));
    }

    #[test]
    #[should_panic(expected = "row_ptr must be monotone")]
    fn invalid_row_ptr_panics() {
        let _ = CsrMatrix::<f64>::from_parts(3, 2, vec![0, 2, 1, 2], vec![0, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn invalid_col_idx_panics() {
        let _ = CsrMatrix::<f64>::from_parts(1, 1, vec![0, 1], vec![3], vec![1.0]);
    }
}
