//! Convection–diffusion generator (nonsymmetric).
//!
//! Synthetic analogue for the nonsymmetric SuiteSparse matrices of Table 2
//! with moderate `nnz/row` (`atmosmodd/j/l`, `Transport`, `tmt_unsym`,
//! `t2em`): a 3-D convection–diffusion operator
//! `-Δu + v · ∇u` discretised with a 7-point stencil and first-order upwind
//! differences for the convection term.  The convection velocity controls how
//! far from symmetric (and how hard for CG-type methods) the system is.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Build a 3-D convection–diffusion matrix on an `nx × ny × nz` grid with
/// convection velocity `(vx, vy, vz)` (in units of the mesh Péclet number:
/// the upwind convective coupling added per axis is `|v|`).
#[must_use]
pub fn convection_diffusion_3d(
    nx: usize,
    ny: usize,
    nz: usize,
    vx: f64,
    vy: f64,
    vz: f64,
) -> CsrMatrix<f64> {
    assert!(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
    let n = nx * ny * nz;
    let idx = |ix: usize, iy: usize, iz: usize| (iz * ny + iy) * nx + ix;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);

    // Upwind discretisation: for positive velocity v along an axis the
    // upstream (backward) coupling is -(1 + |v|) and the downstream coupling
    // is -1 + 0 = -1; the diagonal gains |v| so row sums stay non-negative.
    let split = |v: f64| -> (f64, f64, f64) {
        // returns (backward_coupling, forward_coupling, diag_contribution)
        let a = v.abs();
        if v >= 0.0 {
            (-(1.0 + a), -1.0, 2.0 + a)
        } else {
            (-1.0, -(1.0 + a), 2.0 + a)
        }
    };
    let (bx, fx, dx) = split(vx);
    let (by, fy, dy) = split(vy);
    let (bz, fz, dz) = split(vz);
    let diag = dx + dy + dz;

    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                let row = idx(ix, iy, iz);
                coo.push(row, row, diag);
                if ix > 0 {
                    coo.push(row, idx(ix - 1, iy, iz), bx);
                }
                if ix + 1 < nx {
                    coo.push(row, idx(ix + 1, iy, iz), fx);
                }
                if iy > 0 {
                    coo.push(row, idx(ix, iy - 1, iz), by);
                }
                if iy + 1 < ny {
                    coo.push(row, idx(ix, iy + 1, iz), fy);
                }
                if iz > 0 {
                    coo.push(row, idx(ix, iy, iz - 1), bz);
                }
                if iz + 1 < nz {
                    coo.push(row, idx(ix, iy, iz + 1), fz);
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_velocity_is_symmetric_poisson() {
        let a = convection_diffusion_3d(4, 4, 4, 0.0, 0.0, 0.0);
        let b = crate::gen::laplacian::poisson3d_7pt(4, 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn nonzero_velocity_breaks_symmetry() {
        let a = convection_diffusion_3d(5, 5, 5, 0.0, 0.0, 1.0);
        assert!(!a.is_symmetric(1e-14));
        // Interior row couplings along z: backward -(1+1) = -2, forward -1.
        let idx = |ix: usize, iy: usize, iz: usize| (iz * 5 + iy) * 5 + ix;
        let row = idx(2, 2, 2);
        assert_eq!(a.get(row, idx(2, 2, 1)), Some(-2.0));
        assert_eq!(a.get(row, idx(2, 2, 3)), Some(-1.0));
        assert_eq!(a.get(row, row), Some(2.0 + 2.0 + 3.0));
    }

    #[test]
    fn rows_are_weakly_diagonally_dominant() {
        let a = convection_diffusion_3d(6, 5, 4, 1.5, -0.7, 2.0);
        for row in 0..a.n_rows() {
            let (cols, vals) = a.row_entries(row);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c as usize == row {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag + 1e-12 >= off, "row {row}: diag {diag} < off {off}");
        }
    }

    #[test]
    fn negative_velocity_flips_upwind_direction() {
        let a = convection_diffusion_3d(5, 1, 1, -2.0, 0.0, 0.0);
        // 1-D chain along x; backward coupling -1, forward coupling -(1+2)
        assert_eq!(a.get(2, 1), Some(-1.0));
        assert_eq!(a.get(2, 3), Some(-3.0));
    }
}
