//! Elasticity-like block stencil generator.
//!
//! Synthetic analogue for the heavy SPD SuiteSparse matrices of Table 2
//! (`audikw_1`, `Bump_2911`, `Emilia_923`, `Serena`, `Queen_4147`, `ldoor`)
//! which come from 3-D solid-mechanics discretisations with ~44–82 nonzeros
//! per row and three degrees of freedom per mesh node.  The generator places
//! a 3×3 SPD coupling block on every edge of a 27-point grid stencil:
//!
//! `A = Σ_{(i,j) edge} (e_i - e_j)(e_i - e_j)ᵀ ⊗ B + δ I`
//!
//! with a fixed SPD block `B`, which is symmetric positive definite by
//! construction and reaches ~81 nonzeros per interior row.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// 3×3 SPD coupling block used on every stencil edge (unit diagonal with mild
/// off-diagonal coupling; eigenvalues ≈ {0.8, 0.9, 1.3}).
const B: [[f64; 3]; 3] = [[1.0, 0.2, 0.1], [0.2, 1.0, 0.15], [0.1, 0.15, 1.0]];

/// Build an elasticity-like SPD matrix with 3 degrees of freedom per node of
/// an `nx × ny × nz` grid and 27-point node connectivity.
///
/// `regularization` (the paper analogue of conditioning difficulty) is the
/// δ added to the diagonal; smaller values give harder systems.  The matrix
/// dimension is `3 * nx * ny * nz`.
#[must_use]
pub fn elasticity_like_3d(nx: usize, ny: usize, nz: usize, regularization: f64) -> CsrMatrix<f64> {
    assert!(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
    assert!(regularization >= 0.0, "regularization must be non-negative");
    let nodes = nx * ny * nz;
    let n = 3 * nodes;
    let idx = |ix: usize, iy: usize, iz: usize| (iz * ny + iy) * nx + ix;
    let mut coo = CooMatrix::with_capacity(n, n, 81 * nodes + 3 * nodes);

    // Graph-Laplacian-of-blocks assembly: every undirected edge (i, j)
    // contributes +B to the (i,i) and (j,j) diagonal blocks and -B to the
    // (i,j) and (j,i) off-diagonal blocks.
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                let i = idx(ix, iy, iz);
                // diagonal regularisation
                for d in 0..3 {
                    coo.push(3 * i + d, 3 * i + d, regularization);
                }
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            let jx = ix as i64 + dx;
                            let jy = iy as i64 + dy;
                            let jz = iz as i64 + dz;
                            if jx < 0
                                || jy < 0
                                || jz < 0
                                || jx >= nx as i64
                                || jy >= ny as i64
                                || jz >= nz as i64
                            {
                                continue;
                            }
                            let j = idx(jx as usize, jy as usize, jz as usize);
                            // each directed pair handled once from the row side:
                            // add +B to diagonal block of i and -B to block (i, j)
                            for (r, brow) in B.iter().enumerate() {
                                for (c, &bval) in brow.iter().enumerate() {
                                    coo.push(3 * i + r, 3 * i + c, bval);
                                    coo.push(3 * i + r, 3 * j + c, -bval);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv_seq;

    #[test]
    fn dimension_and_density_match_audikw_character() {
        let a = elasticity_like_3d(4, 4, 4, 0.1);
        assert_eq!(a.n_rows(), 3 * 64);
        // interior node: 26 neighbours × 3 + own block 3 = 81 entries per row
        let interior_node = (4 + 1) * 4 + 1;
        let (cols, _) = a.row_entries(3 * interior_node);
        assert_eq!(cols.len(), 81);
        assert!(a.nnz_per_row() > 40.0, "nnz/row = {}", a.nnz_per_row());
    }

    #[test]
    fn matrix_is_symmetric() {
        let a = elasticity_like_3d(3, 3, 3, 0.05);
        assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn matrix_is_positive_definite_on_random_vectors() {
        let a = elasticity_like_3d(3, 3, 2, 0.1);
        let n = a.n_rows();
        for seed in 1..6u64 {
            let x: Vec<f64> = (0..n)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(seed.wrapping_mul(0x9E3779B97F4A7C15));
                    ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
                })
                .collect();
            let mut ax = vec![0.0; n];
            spmv_seq(&a, &x, &mut ax);
            let xtax: f64 = x.iter().zip(ax.iter()).map(|(a, b)| a * b).sum();
            assert!(xtax > 0.0, "seed {seed}: x^T A x = {xtax}");
        }
    }

    #[test]
    fn smaller_regularization_means_smaller_diagonal() {
        let hard = elasticity_like_3d(3, 3, 3, 0.01);
        let easy = elasticity_like_3d(3, 3, 3, 1.0);
        assert!(easy.get(0, 0).unwrap() > hard.get(0, 0).unwrap());
    }
}
