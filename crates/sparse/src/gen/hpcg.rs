//! The HPCG benchmark matrix (27-point stencil).
//!
//! As described in Section 5 of the paper: "HPCG is based on the 27-point
//! stencil computation, and the diagonal and off-diagonal elements of the
//! matrices are 26 and -1, respectively."  Grid points are connected to all
//! neighbours within a Chebyshev distance of 1 on a regular
//! `nx × ny × nz` grid; boundary rows simply have fewer off-diagonal
//! entries (no periodic wrap-around), exactly like the HPCG reference code.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Linear index of grid point `(ix, iy, iz)` on an `nx × ny × nz` grid.
#[inline]
pub(crate) fn grid_index(ix: usize, iy: usize, iz: usize, nx: usize, ny: usize) -> usize {
    (iz * ny + iy) * nx + ix
}

/// Build the HPCG 27-point stencil matrix for an `nx × ny × nz` grid.
///
/// The resulting matrix is symmetric positive definite with diagonal 26 and
/// off-diagonal entries -1.
#[must_use]
pub fn hpcg_matrix(nx: usize, ny: usize, nz: usize) -> CsrMatrix<f64> {
    stencil_27pt(nx, ny, nz, |_dx, _dy, _dz| -1.0)
}

/// Generic 27-point stencil builder: the weight of the coupling to the
/// neighbour at offset `(dx, dy, dz) != (0,0,0)` is given by `off_diag`.
/// The diagonal entry is fixed at 26, as in HPCG/HPGMP.
pub(crate) fn stencil_27pt(
    nx: usize,
    ny: usize,
    nz: usize,
    off_diag: impl Fn(i64, i64, i64) -> f64,
) -> CsrMatrix<f64> {
    assert!(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
    let n = nx * ny * nz;
    let mut coo = CooMatrix::with_capacity(n, n, 27 * n);
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                let row = grid_index(ix, iy, iz, nx, ny);
                coo.push(row, row, 26.0);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            let jx = ix as i64 + dx;
                            let jy = iy as i64 + dy;
                            let jz = iz as i64 + dz;
                            if jx < 0
                                || jy < 0
                                || jz < 0
                                || jx >= nx as i64
                                || jy >= ny as i64
                                || jz >= nz as i64
                            {
                                continue;
                            }
                            let col = grid_index(jx as usize, jy as usize, jz as usize, nx, ny);
                            coo.push(row, col, off_diag(dx, dy, dz));
                        }
                    }
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_pattern() {
        let a = hpcg_matrix(4, 4, 4);
        assert_eq!(a.n_rows(), 64);
        // paper Table 2: nnz/n approaches 27 for large grids; for 4^3 the
        // count is exactly (2*4-... ) - just check against a direct formula:
        // sum over nodes of product of (neighbours+1) per axis.
        let mut expect = 0usize;
        for iz in 0..4i64 {
            for iy in 0..4i64 {
                for ix in 0..4i64 {
                    let cnt = |i: i64, n: i64| if i == 0 || i == n - 1 { 2 } else { 3 };
                    expect += (cnt(ix, 4) * cnt(iy, 4) * cnt(iz, 4)) as usize;
                }
            }
        }
        assert_eq!(a.nnz(), expect);
    }

    #[test]
    fn interior_row_has_27_entries_diag_26_offdiag_minus_1() {
        let a = hpcg_matrix(5, 5, 5);
        let row = grid_index(2, 2, 2, 5, 5);
        let (cols, vals) = a.row_entries(row);
        assert_eq!(cols.len(), 27);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            if c as usize == row {
                assert_eq!(v, 26.0);
            } else {
                assert_eq!(v, -1.0);
            }
        }
    }

    #[test]
    fn matrix_is_symmetric_and_diagonally_dominant_interior() {
        let a = hpcg_matrix(4, 3, 5);
        assert!(a.is_symmetric(1e-14));
        // interior rows: 26 diagonal vs 26 off-diagonal magnitude (weakly
        // dominant); boundary rows strictly dominant.
        let (cols, vals) = a.row_entries(0);
        let diag: f64 = vals[cols.iter().position(|&c| c == 0).unwrap()];
        let off: f64 = vals
            .iter()
            .zip(cols.iter())
            .filter(|(_, &c)| c != 0)
            .map(|(v, _)| v.abs())
            .sum();
        assert!(diag > off);
    }

    #[test]
    fn paper_grid_sizes_scale_correctly() {
        // hpcg_x_y_z in the paper: n = 2^x * 2^y * 2^z; check the scaled-down
        // equivalent relationship holds for our generator.
        let a = hpcg_matrix(8, 8, 8);
        assert_eq!(a.n_rows(), 512);
        let b = hpcg_matrix(16, 8, 8);
        assert_eq!(b.n_rows(), 1024);
    }

    #[test]
    #[should_panic(expected = "grid dimensions must be positive")]
    fn zero_grid_panics() {
        let _ = hpcg_matrix(0, 4, 4);
    }
}
