//! The HPGMP benchmark matrix (nonsymmetric 27-point stencil).
//!
//! Section 5 of the paper: "The matrices from HPGMP are similar to those from
//! HPCG; the off-diagonal values that represent the connection with forward
//! and backward positions along the z-axis are replaced with −1 + β and
//! −1 − β, respectively (β was 0.5 in the experiments)."
//!
//! The skew is applied to the direct ±z neighbours (offset `(0, 0, ±1)`),
//! which breaks symmetry while keeping the stencil pattern of HPCG.

use crate::csr::CsrMatrix;

use super::hpcg::stencil_27pt;

/// Build the HPGMP nonsymmetric stencil matrix for an `nx × ny × nz` grid
/// with skew parameter `beta` (the paper uses `beta = 0.5`).
#[must_use]
pub fn hpgmp_matrix(nx: usize, ny: usize, nz: usize, beta: f64) -> CsrMatrix<f64> {
    stencil_27pt(nx, ny, nz, move |dx, dy, dz| {
        if dx == 0 && dy == 0 && dz == 1 {
            // forward along z
            -1.0 + beta
        } else if dx == 0 && dy == 0 && dz == -1 {
            // backward along z
            -1.0 - beta
        } else {
            -1.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::hpcg::{grid_index, hpcg_matrix};

    #[test]
    fn z_neighbours_are_skewed() {
        let (nx, ny, nz) = (4, 4, 4);
        let a = hpgmp_matrix(nx, ny, nz, 0.5);
        let row = grid_index(1, 1, 1, nx, ny);
        let fwd = grid_index(1, 1, 2, nx, ny);
        let bwd = grid_index(1, 1, 0, nx, ny);
        assert_eq!(a.get(row, fwd), Some(-0.5));
        assert_eq!(a.get(row, bwd), Some(-1.5));
        // the matching transposed entries differ => nonsymmetric
        assert_eq!(a.get(fwd, row), Some(-1.5));
        assert!(!a.is_symmetric(1e-14));
    }

    #[test]
    fn beta_zero_reduces_to_hpcg() {
        let a = hpgmp_matrix(3, 4, 5, 0.0);
        let b = hpcg_matrix(3, 4, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn same_pattern_as_hpcg() {
        let a = hpgmp_matrix(4, 4, 4, 0.5);
        let b = hpcg_matrix(4, 4, 4);
        assert_eq!(a.nnz(), b.nnz());
        assert_eq!(a.row_ptr(), b.row_ptr());
        assert_eq!(a.col_idx(), b.col_idx());
        assert_eq!(a.diagonal(), b.diagonal());
    }
}
