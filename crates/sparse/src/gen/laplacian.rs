//! Poisson / anisotropic Laplacian stencil generators.
//!
//! These serve as synthetic analogues for the low `nnz/row` SuiteSparse
//! matrices in Table 2 of the paper (`G3_circuit`, `ecology2`, `thermal2`,
//! `tmt_sym`, `apache2`, `t2em`, …), all of which are SPD matrices of 2-D/3-D
//! diffusion type with roughly 5–7 nonzeros per row.  The anisotropic
//! variants produce the slower-converging behaviour of the harder members of
//! that family.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// 2-D Poisson equation, 5-point stencil, Dirichlet boundary, on an
/// `nx × ny` grid.  SPD with 5 nonzeros per interior row.
#[must_use]
pub fn poisson2d_5pt(nx: usize, ny: usize) -> CsrMatrix<f64> {
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    let n = nx * ny;
    let idx = |ix: usize, iy: usize| iy * nx + ix;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for iy in 0..ny {
        for ix in 0..nx {
            let row = idx(ix, iy);
            coo.push(row, row, 4.0);
            if ix > 0 {
                coo.push(row, idx(ix - 1, iy), -1.0);
            }
            if ix + 1 < nx {
                coo.push(row, idx(ix + 1, iy), -1.0);
            }
            if iy > 0 {
                coo.push(row, idx(ix, iy - 1), -1.0);
            }
            if iy + 1 < ny {
                coo.push(row, idx(ix, iy + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 3-D Poisson equation, 7-point stencil, Dirichlet boundary, on an
/// `nx × ny × nz` grid.  SPD with 7 nonzeros per interior row.
#[must_use]
pub fn poisson3d_7pt(nx: usize, ny: usize, nz: usize) -> CsrMatrix<f64> {
    anisotropic_poisson_3d(nx, ny, nz, 1.0, 1.0, 1.0)
}

/// 3-D anisotropic Poisson operator with per-axis diffusion coefficients
/// `(eps_x, eps_y, eps_z)`: `-eps_x u_xx - eps_y u_yy - eps_z u_zz`.
///
/// Strong anisotropy (e.g. `eps_z = 1e-3`) yields the slowly converging,
/// thin-spectrum behaviour of matrices like `thermal2` or `ecology2`.
#[must_use]
pub fn anisotropic_poisson_3d(
    nx: usize,
    ny: usize,
    nz: usize,
    eps_x: f64,
    eps_y: f64,
    eps_z: f64,
) -> CsrMatrix<f64> {
    assert!(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
    assert!(
        eps_x > 0.0 && eps_y > 0.0 && eps_z > 0.0,
        "diffusion coefficients must be positive"
    );
    let n = nx * ny * nz;
    let idx = |ix: usize, iy: usize, iz: usize| (iz * ny + iy) * nx + ix;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let diag = 2.0 * (eps_x + eps_y + eps_z);
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                let row = idx(ix, iy, iz);
                coo.push(row, row, diag);
                if ix > 0 {
                    coo.push(row, idx(ix - 1, iy, iz), -eps_x);
                }
                if ix + 1 < nx {
                    coo.push(row, idx(ix + 1, iy, iz), -eps_x);
                }
                if iy > 0 {
                    coo.push(row, idx(ix, iy - 1, iz), -eps_y);
                }
                if iy + 1 < ny {
                    coo.push(row, idx(ix, iy + 1, iz), -eps_y);
                }
                if iz > 0 {
                    coo.push(row, idx(ix, iy, iz - 1), -eps_z);
                }
                if iz + 1 < nz {
                    coo.push(row, idx(ix, iy, iz + 1), -eps_z);
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson2d_structure() {
        let a = poisson2d_5pt(10, 10);
        assert_eq!(a.n_rows(), 100);
        assert!(a.is_symmetric(1e-14));
        // interior row has 5 entries
        let (cols, _) = a.row_entries(5 * 10 + 5);
        assert_eq!(cols.len(), 5);
        assert_eq!(a.get(55, 55), Some(4.0));
    }

    #[test]
    fn poisson3d_structure() {
        let a = poisson3d_7pt(5, 5, 5);
        assert_eq!(a.n_rows(), 125);
        assert!(a.is_symmetric(1e-14));
        let mid = (2 * 5 + 2) * 5 + 2;
        let (cols, _) = a.row_entries(mid);
        assert_eq!(cols.len(), 7);
        assert_eq!(a.get(mid, mid), Some(6.0));
    }

    #[test]
    fn anisotropic_diag_reflects_coefficients() {
        let a = anisotropic_poisson_3d(4, 4, 4, 1.0, 1.0, 1e-3);
        let mid = (4 + 1) * 4 + 1;
        assert!((a.get(mid, mid).unwrap() - 2.0 * (1.0 + 1.0 + 1e-3)).abs() < 1e-14);
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn spd_check_via_rayleigh_quotient() {
        // x^T A x > 0 for a handful of pseudo-random vectors.
        let a = poisson2d_5pt(8, 8);
        let n = a.n_rows();
        for seed in 1..5u64 {
            let x: Vec<f64> = (0..n)
                .map(|i| (((i as u64).wrapping_mul(seed * 2654435761) % 1000) as f64 / 1000.0) - 0.5)
                .collect();
            let mut ax = vec![0.0; n];
            crate::spmv::spmv_seq(&a, &x, &mut ax);
            let xtax: f64 = x.iter().zip(ax.iter()).map(|(a, b)| a * b).sum();
            assert!(xtax > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_coefficient_panics() {
        let _ = anisotropic_poisson_3d(4, 4, 4, 1.0, 0.0, 1.0);
    }
}
