//! Problem generators.
//!
//! The paper evaluates F3R on three families of matrices: the HPCG and HPGMP
//! benchmark stencils (fully specified in the paper and implemented exactly
//! here) and a set of SuiteSparse matrices.  SuiteSparse downloads are not
//! bundled; instead, each SuiteSparse matrix used by the paper is mapped to a
//! *synthetic analogue* with the same qualitative structure (symmetry,
//! nonzeros per row, conditioning character) so the relative-solver-behaviour
//! experiments can be regenerated at laptop scale.  See DESIGN.md §3.

pub mod convdiff;
pub mod elasticity;
pub mod hpcg;
pub mod hpgmp;
pub mod laplacian;
pub mod random;
pub mod rhs;

pub use convdiff::convection_diffusion_3d;
pub use elasticity::elasticity_like_3d;
pub use hpcg::hpcg_matrix;
pub use hpgmp::hpgmp_matrix;
pub use laplacian::{anisotropic_poisson_3d, poisson2d_5pt, poisson3d_7pt};
pub use random::{random_nonsymmetric, random_spd};
pub use rhs::random_rhs;
