//! Random sparse matrix generators (seeded, reproducible).
//!
//! Used by property-based tests and as analogues of the irregular circuit /
//! device matrices in Table 2 (`Freescale1`, `rajat31`, `ss`,
//! `vas_stokes_*`), which combine low average `nnz/row` with irregular row
//! lengths and (for the Stokes family) poor conditioning.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Random sparse symmetric positive definite matrix of dimension `n` with
/// roughly `nnz_per_row` off-diagonal entries per row.
///
/// Construction: random symmetric off-diagonal pattern with entries in
/// `[-1, 0)`, plus a diagonal equal to the off-diagonal row sum magnitude
/// plus `diag_boost`, which makes the matrix strictly diagonally dominant and
/// hence SPD.  Smaller `diag_boost` gives harder systems.
#[must_use]
pub fn random_spd(n: usize, nnz_per_row: usize, diag_boost: f64, seed: u64) -> CsrMatrix<f64> {
    assert!(n > 0, "dimension must be positive");
    assert!(diag_boost > 0.0, "diag_boost must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (nnz_per_row + 1));
    let mut off_sum = vec![0.0f64; n];
    let target_per_row = nnz_per_row.max(1) / 2; // each edge contributes to two rows
    for i in 0..n {
        for _ in 0..target_per_row {
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            let v = -rng.gen_range(0.0..1.0f64);
            coo.push_sym(i, j, v);
            off_sum[i] += v.abs();
            off_sum[j] += v.abs();
        }
    }
    for (i, &s) in off_sum.iter().enumerate() {
        coo.push(i, i, s + diag_boost);
    }
    coo.to_csr()
}

/// Random sparse nonsymmetric, diagonally dominant matrix of dimension `n`
/// with roughly `nnz_per_row` off-diagonal entries per row.
#[must_use]
pub fn random_nonsymmetric(n: usize, nnz_per_row: usize, diag_boost: f64, seed: u64) -> CsrMatrix<f64> {
    assert!(n > 0, "dimension must be positive");
    assert!(diag_boost > 0.0, "diag_boost must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (nnz_per_row + 1));
    for i in 0..n {
        let mut row_sum = 0.0f64;
        for _ in 0..nnz_per_row.max(1) {
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            let v: f64 = rng.gen_range(-1.0..1.0);
            coo.push(i, j, v);
            row_sum += v.abs();
        }
        coo.push(i, i, row_sum + diag_boost);
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv_seq;

    #[test]
    fn random_spd_is_symmetric_and_positive_definite() {
        let a = random_spd(200, 8, 0.5, 42);
        assert!(a.is_symmetric(1e-12));
        let x: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64 / 50.0 - 1.0).collect();
        let mut ax = vec![0.0; 200];
        spmv_seq(&a, &x, &mut ax);
        let xtax: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
        assert!(xtax > 0.0);
    }

    #[test]
    fn seeds_are_reproducible_and_distinct() {
        let a = random_spd(100, 6, 1.0, 7);
        let b = random_spd(100, 6, 1.0, 7);
        let c = random_spd(100, 6, 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn nonsymmetric_generator_is_diagonally_dominant() {
        let a = random_nonsymmetric(150, 10, 0.1, 3);
        assert!(!a.is_symmetric(1e-12));
        for row in 0..a.n_rows() {
            let (cols, vals) = a.row_entries(row);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c as usize == row {
                    diag += v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {row} not dominant");
        }
    }

    #[test]
    fn density_tracks_request() {
        let a = random_nonsymmetric(500, 12, 0.5, 11);
        assert!(a.nnz_per_row() > 6.0 && a.nnz_per_row() < 14.0);
    }
}
