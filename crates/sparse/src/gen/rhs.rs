//! Right-hand-side generation.
//!
//! Section 5 of the paper: "In each test, the right-hand side was a random
//! vector, whose elements were uniformly distributed in the range [0, 1)."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random right-hand side with entries uniformly distributed in `[0, 1)`,
/// reproducible from `seed`.
#[must_use]
pub fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_in_unit_interval() {
        let b = random_rhs(1000, 1);
        assert_eq!(b.len(), 1000);
        assert!(b.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn reproducible_and_seed_dependent() {
        assert_eq!(random_rhs(64, 5), random_rhs(64, 5));
        assert_ne!(random_rhs(64, 5), random_rhs(64, 6));
    }

    #[test]
    fn mean_is_near_half() {
        let b = random_rhs(20_000, 9);
        let mean: f64 = b.iter().sum::<f64>() / b.len() as f64;
        assert!((mean - 0.5).abs() < 0.02);
    }
}
