//! Matrix Market I/O.
//!
//! The paper's CPU/GPU evaluations use matrices from the SuiteSparse Matrix
//! Collection, which are distributed in the Matrix Market exchange format.
//! This module implements the subset of the format needed to load those
//! files (`matrix coordinate real/integer/pattern general/symmetric`), so
//! that the experiment harness can be pointed at real SuiteSparse downloads
//! when they are available; the bundled experiments fall back to the
//! synthetic analogue generators described in DESIGN.md.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use f3r_precision::Scalar;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Dynamic-range statistics of a matrix's stored entries, answering the
/// question the fp16 storage axis depends on: *does this matrix survive an
/// unscaled half-precision copy?*
///
/// Matrix Market inputs in the wild span many orders of magnitude; entries
/// above fp16's largest finite value (65504) round to ±∞ and nonzero entries
/// below its smallest subnormal (≈ 6.0e-8) flush to zero, silently corrupting
/// an unscaled `to_precision::<f16>()` copy.  Loaders expose these stats so
/// callers can pick scaled matrix storage
/// ([`ScaledCsr`](crate::csr::ScaledCsr)) — or global Jacobi pre-scaling —
/// before any fp16 copy is materialized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryRangeStats {
    /// Largest absolute value of any stored entry.
    pub max_abs: f64,
    /// Smallest absolute value of any stored *nonzero* entry (`0.0` if the
    /// matrix stores no nonzero entries).
    pub min_abs_nonzero: f64,
    /// `max_abs / min_abs_nonzero` (`1.0` when degenerate) — the dynamic
    /// range of the stored entries.
    pub dynamic_range: f64,
    /// Stored entries whose fp16 conversion overflows to ±∞.
    pub fp16_overflow: usize,
    /// Stored nonzero entries whose fp16 conversion flushes to zero.
    pub fp16_underflow: usize,
}

impl EntryRangeStats {
    /// Compute the stats for a matrix.
    #[must_use]
    pub fn compute<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        let mut max_abs = 0.0f64;
        let mut min_abs_nonzero = f64::INFINITY;
        let mut fp16_overflow = 0usize;
        let mut fp16_underflow = 0usize;
        for v in a.values() {
            let m = v.to_f64().abs();
            max_abs = max_abs.max(m);
            if m > 0.0 {
                min_abs_nonzero = min_abs_nonzero.min(m);
                let h = half::f16::from_f64(m);
                if !h.to_f64().is_finite() {
                    fp16_overflow += 1;
                } else if h.to_f64() == 0.0 {
                    fp16_underflow += 1;
                }
            }
        }
        if !min_abs_nonzero.is_finite() {
            min_abs_nonzero = 0.0;
        }
        let dynamic_range = if min_abs_nonzero > 0.0 {
            max_abs / min_abs_nonzero
        } else {
            1.0
        };
        Self {
            max_abs,
            min_abs_nonzero,
            dynamic_range,
            fp16_overflow,
            fp16_underflow,
        }
    }

    /// `true` when every stored entry survives an *unscaled* fp16 conversion
    /// (no overflow to ±∞, no nonzero flushed to zero).
    #[must_use]
    pub fn fp16_representable(&self) -> bool {
        self.fp16_overflow == 0 && self.fp16_underflow == 0
    }
}

/// Errors produced by the Matrix Market reader.
#[derive(Debug)]
pub enum MatrixMarketError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not follow the expected format.
    Parse(String),
}

impl std::fmt::Display for MatrixMarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixMarketError::Io(e) => write!(f, "I/O error: {e}"),
            MatrixMarketError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MatrixMarketError {}

impl From<std::io::Error> for MatrixMarketError {
    fn from(e: std::io::Error) -> Self {
        MatrixMarketError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MatrixMarketError {
    MatrixMarketError::Parse(msg.into())
}

/// Read a sparse matrix in Matrix Market coordinate format from a reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix<f64>, MatrixMarketError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??
        .to_lowercase();
    if !header.starts_with("%%matrixmarket") {
        return Err(parse_err("missing %%MatrixMarket header"));
    }
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() < 5 || tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(parse_err("only 'matrix coordinate' files are supported"));
    }
    let field = tokens[3];
    let symmetry = tokens[4];
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported field type '{field}'")));
    }
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(parse_err(format!("unsupported symmetry '{symmetry}'")));
    }

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|_| parse_err("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must contain rows cols nnz"));
    }
    let (n_rows, n_cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(n_rows, n_cols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err("missing column index"))?
            .parse()
            .map_err(|_| parse_err("bad column index"))?;
        let v: f64 = match field {
            "pattern" => 1.0,
            _ => it
                .next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?,
        };
        if r == 0 || c == 0 || r > n_rows || c > n_cols {
            return Err(parse_err(format!("index ({r},{c}) out of bounds")));
        }
        let (r, c) = (r - 1, c - 1);
        if symmetry == "symmetric" {
            coo.push_sym(r, c, v);
        } else {
            coo.push(r, c, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Read a sparse matrix in Matrix Market coordinate format from a file.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<CsrMatrix<f64>, MatrixMarketError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market(file)
}

/// Read a Matrix Market matrix together with its [`EntryRangeStats`], so the
/// caller can decide on a storage strategy (unscaled vs scaled fp16) before
/// materializing any reduced-precision copy.
pub fn read_matrix_market_with_stats<R: Read>(
    reader: R,
) -> Result<(CsrMatrix<f64>, EntryRangeStats), MatrixMarketError> {
    let a = read_matrix_market(reader)?;
    let stats = EntryRangeStats::compute(&a);
    Ok((a, stats))
}

/// [`read_matrix_market_with_stats`] for a file path.
pub fn read_matrix_market_file_with_stats(
    path: impl AsRef<Path>,
) -> Result<(CsrMatrix<f64>, EntryRangeStats), MatrixMarketError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_with_stats(file)
}

/// Write a matrix in Matrix Market `coordinate real general` format.
pub fn write_matrix_market<W: Write>(
    a: &CsrMatrix<f64>,
    mut writer: W,
) -> Result<(), MatrixMarketError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by f3r-sparse")?;
    writeln!(writer, "{} {} {}", a.n_rows(), a.n_cols(), a.nnz())?;
    for row in 0..a.n_rows() {
        let (cols, vals) = a.row_entries(row);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            writeln!(writer, "{} {} {:.17e}", row + 1, c as usize + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
% a comment\n\
3 3 4\n\
1 1 2.0\n\
2 2 3.0\n\
3 3 4.0\n\
1 3 -1.5\n";

    const SYMMETRIC: &str = "%%MatrixMarket matrix coordinate real symmetric\n\
2 2 3\n\
1 1 2.0\n\
2 1 -1.0\n\
2 2 2.0\n";

    #[test]
    fn reads_general_matrix() {
        let a = read_matrix_market(GENERAL.as_bytes()).unwrap();
        assert_eq!(a.n_rows(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 0), Some(2.0));
        assert_eq!(a.get(0, 2), Some(-1.5));
    }

    #[test]
    fn reads_symmetric_matrix_and_mirrors() {
        let a = read_matrix_market(SYMMETRIC.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 1), Some(-1.0));
        assert_eq!(a.get(1, 0), Some(-1.0));
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn roundtrip_write_read() {
        let a = read_matrix_market(GENERAL.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("not a matrix\n1 1 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_index() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), Some(1.0));
        assert_eq!(a.get(1, 1), Some(1.0));
    }

    #[test]
    fn range_stats_of_benign_matrix_are_fp16_clean() {
        let (a, stats) = read_matrix_market_with_stats(GENERAL.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 4);
        assert_eq!(stats.max_abs, 4.0);
        assert_eq!(stats.min_abs_nonzero, 1.5);
        assert!((stats.dynamic_range - 4.0 / 1.5).abs() < 1e-15);
        assert_eq!(stats.fp16_overflow, 0);
        assert_eq!(stats.fp16_underflow, 0);
        assert!(stats.fp16_representable());
    }

    #[test]
    fn range_stats_flag_fp16_overflow_and_underflow() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
3 3 3\n\
1 1 1.0e9\n\
2 2 1.0e-12\n\
3 3 1.0\n";
        let (_, stats) = read_matrix_market_with_stats(text.as_bytes()).unwrap();
        assert_eq!(stats.max_abs, 1.0e9);
        assert_eq!(stats.min_abs_nonzero, 1.0e-12);
        assert!((stats.dynamic_range - 1.0e21).abs() < 1e6);
        assert_eq!(stats.fp16_overflow, 1);
        assert_eq!(stats.fp16_underflow, 1);
        assert!(!stats.fp16_representable());
    }

    #[test]
    fn range_stats_of_empty_matrix_are_degenerate() {
        let stats = EntryRangeStats::compute(&CsrMatrix::<f64>::from_parts(
            1,
            1,
            vec![0, 0],
            vec![],
            vec![],
        ));
        assert_eq!(stats.max_abs, 0.0);
        assert_eq!(stats.min_abs_nonzero, 0.0);
        assert_eq!(stats.dynamic_range, 1.0);
        assert!(stats.fp16_representable());
    }
}
