//! Sparse linear-algebra substrate for the F3R reproduction.
//!
//! The paper's solvers are built on a small set of memory-bound kernels:
//! CSR / sliced-ELLPACK sparse matrix–vector products in several precisions,
//! dense vector (BLAS-1) operations, and problem generators for the HPCG /
//! HPGMP benchmark matrices plus synthetic analogues of the SuiteSparse test
//! set.  This crate provides all of them, generic over the working precision
//! via [`f3r_precision::Scalar`], with sequential and thread-parallel
//! implementations (chunk tasks on the persistent `f3r-parallel` worker
//! pool, dispatched above the shared `f3r_parallel::thresholds`).
//!
//! # The direct-widening convention
//!
//! The whole point of fp16/fp32 storage in the paper is that the memory-bound
//! kernels run at the *narrow* precision's bandwidth while arithmetic happens
//! in a safe *accumulation* precision.  The kernel layer therefore separates
//! three precisions:
//!
//! * **storage precision `TA`** — how the matrix values are stored
//!   (fp64/fp32/fp16 per nesting level),
//! * **vector precision `TV`** — how the dense vectors are stored,
//! * **accumulation precision `TV::Accum`** — where multiplies and long sums
//!   happen: `f32` for fp16 vectors, otherwise `TV` itself.
//!
//! Every stored operand enters the accumulator with **one direct
//! conversion** — vectors via [`f3r_precision::Scalar::widen`] (exact),
//! matrix values via [`f3r_precision::FromScalar::from_scalar`]
//! (`TA → TV::Accum`) — and results are rounded back **once** per element
//! with [`f3r_precision::Scalar::narrow`].  Hot loops are unrolled over
//! independent accumulators (4-way SpMV rows, 8-way dots) with no
//! per-element `mul_add`, so LLVM autovectorises them.  The historical
//! kernels, which converted every element through `f64`
//! (`from_f64(x.to_f64())`) and issued a scalar FMA per element, are
//! preserved in [`mod@reference`] as correctness and performance baselines
//! only.
//!
//! ## Fused kernels
//!
//! The solvers' iteration loops pair reductions with the sweeps that produce
//! their operands; the kernel layer fuses those pairs so the operand is
//! never re-read from memory:
//!
//! * [`spmv::spmv_residual`] — `r = b − A x` with the subtraction in the
//!   accumulator,
//! * [`spmv::spmv_dot2`] — `y = A x` plus `(uᵀy, yᵀy)` in one sweep (the
//!   adaptive Richardson weight, CG's `(p, Ap)`, BiCGStab's `(t,s)/(t,t)`),
//! * [`blas1::dot2`] — two dots in one pass (FGMRES Gram–Schmidt),
//! * [`blas1::dot_with_sqnorm`] — `(xᵀy, xᵀx)` reading `x` once,
//! * [`blas1::axpy_norm2`] — vector update plus the updated vector's norm²,
//! * [`blas1::scale_into`] — fused copy + scale (basis normalisation).
//!
//! ## Compressed-basis kernels
//!
//! On top of the storage/compute split for matrices, the kernel layer
//! supports *basis* vectors stored below the working precision: a compressed
//! basis vector is `(stored, scale)` with elements in a storage precision
//! (fp16/fp32) and one power-of-two `f64` amplitude scale per vector.
//! [`blas1::narrow_scaled_into`] compresses on write,
//! [`blas1::widen_scaled_into`] decompresses, and
//! [`blas1::dot_compressed`] / [`blas1::dot2_compressed`] /
//! [`blas1::axpy_scaled_from`] / [`blas1::axpy_scaled_norm2`] /
//! [`blas1::norm2_compressed`] operate on the compressed form directly,
//! widening each stored element exactly once.  `f3r-core`'s
//! `CompressedBasis` wraps these into the Krylov-basis storage used by
//! FGMRES.
//!
//! ## Scaled matrix storage
//!
//! The same power-of-two amplitude convention applies to the matrix itself:
//! [`csr::ScaledCsr`] / [`sell::ScaledSell`] store row-normalised values
//! (`|stored| ≤ 1`) in a narrow precision plus one `f64` scale per row, so
//! fp16 matrix storage survives any entry dynamic range — general Matrix
//! Market inputs (see [`io::EntryRangeStats`]) would otherwise overflow an
//! unscaled fp16 copy to ±∞.  The fused kernels [`spmv::spmv_scaled`],
//! [`spmv::spmv_scaled_residual`], [`spmv::spmv_scaled_dot2`] and
//! [`spmv::spmv_scaled_sell`] widen each stored element exactly once and
//! fold the row scale into the accumulated sum once per row.
//!
//! See `crates/bench/README.md` for how to benchmark the layer and the
//! recorded per-PR baselines.
//!
//! # Quick example
//!
//! ```
//! use f3r_sparse::gen::hpcg::hpcg_matrix;
//! use f3r_sparse::spmv::spmv;
//!
//! let a = hpcg_matrix(8, 8, 8);          // 27-point stencil, n = 512
//! let x = vec![1.0_f64; a.n_cols()];
//! let mut y = vec![0.0_f64; a.n_rows()];
//! spmv(&a, &x, &mut y);
//! assert!(y.iter().all(|v| *v >= 0.0));  // weak diagonal dominance
//! ```

#![warn(missing_docs)]

pub mod blas1;
pub mod coo;
pub mod csr;
pub mod gen;
pub mod io;
pub mod reference;
pub mod scaling;
pub mod sell;
pub mod spmv;
pub mod stats;

pub use coo::CooMatrix;
pub use csr::{CsrMatrix, ScaledCsr};
pub use io::EntryRangeStats;
pub use scaling::ScaledSystem;
pub use sell::{ScaledSell, SellMatrix};
pub use stats::MatrixStats;
