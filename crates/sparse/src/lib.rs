//! Sparse linear-algebra substrate for the F3R reproduction.
//!
//! The paper's solvers are built on a small set of memory-bound kernels:
//! CSR / sliced-ELLPACK sparse matrix–vector products in several precisions,
//! dense vector (BLAS-1) operations, and problem generators for the HPCG /
//! HPGMP benchmark matrices plus synthetic analogues of the SuiteSparse test
//! set.  This crate provides all of them, generic over the working precision
//! via [`f3r_precision::Scalar`], with sequential and rayon-parallel
//! implementations.
//!
//! # Quick example
//!
//! ```
//! use f3r_sparse::gen::hpcg::hpcg_matrix;
//! use f3r_sparse::spmv::spmv;
//!
//! let a = hpcg_matrix(8, 8, 8);          // 27-point stencil, n = 512
//! let x = vec![1.0_f64; a.n_cols()];
//! let mut y = vec![0.0_f64; a.n_rows()];
//! spmv(&a, &x, &mut y);
//! assert!(y.iter().all(|v| *v >= 0.0));  // weak diagonal dominance
//! ```

#![warn(missing_docs)]

pub mod blas1;
pub mod coo;
pub mod csr;
pub mod gen;
pub mod io;
pub mod scaling;
pub mod sell;
pub mod spmv;
pub mod stats;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use scaling::ScaledSystem;
pub use sell::SellMatrix;
pub use stats::MatrixStats;
