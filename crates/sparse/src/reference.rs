//! Naive reference kernels: the pre-widening implementations, kept verbatim.
//!
//! These are the original scalar kernels that converted **every element
//! through `f64`** (`from_f64(x.to_f64())`) and issued one `mul_add` per
//! element.  They are retained for two purposes only:
//!
//! 1. **Correctness baselines** — the property tests assert that the
//!    unrolled/fused kernels in [`crate::spmv`] and [`crate::blas1`] agree
//!    with these within one ulp of the accumulation precision, for every
//!    `(TA, TV)` precision pair the solvers use.
//! 2. **Performance baselines** — the criterion benches time them next to
//!    the production kernels so the speedup of the direct-widening layer
//!    stays visible (and regressions stay measurable) across commits.
//!
//! Do **not** call these from solver code: the double conversion adds two
//! rounding steps per flop, the scalar `mul_add` lowers to a libm call on
//! targets without native FMA, and both together erase the bandwidth
//! advantage of narrow storage that the paper's speedups depend on.

use f3r_precision::Scalar;

use crate::csr::CsrMatrix;

/// Reference CSR SpMV row: per-element `f64` round trip + scalar `mul_add`.
#[inline(always)]
fn spmv_row_naive<TA: Scalar, TV: Scalar>(cols: &[u32], vals: &[TA], x: &[TV]) -> TV {
    let mut acc = <TV::Accum as Scalar>::zero();
    for (&c, &a) in cols.iter().zip(vals.iter()) {
        let xv = <TV::Accum as Scalar>::from_f64(x[c as usize].to_f64());
        let av = <TV::Accum as Scalar>::from_f64(a.to_f64());
        acc = av.mul_add(xv, acc);
    }
    TV::from_f64(acc.to_f64())
}

/// Reference sequential CSR SpMV: `y = A x`.
///
/// # Panics
/// Panics if the vector lengths do not match the matrix dimensions.
pub fn spmv_seq_naive<TA: Scalar, TV: Scalar>(a: &CsrMatrix<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv: y length mismatch");
    for (row, yi) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row_entries(row);
        *yi = spmv_row_naive(cols, vals, x);
    }
}

/// Reference residual kernel: `r = b - A x` via the naive row kernel.
pub fn spmv_residual_naive<TA: Scalar, TV: Scalar>(
    a: &CsrMatrix<TA>,
    x: &[TV],
    b: &[TV],
    r: &mut [TV],
) {
    assert_eq!(x.len(), a.n_cols(), "residual: x length mismatch");
    assert_eq!(b.len(), a.n_rows(), "residual: b length mismatch");
    assert_eq!(r.len(), a.n_rows(), "residual: r length mismatch");
    for (row, ri) in r.iter_mut().enumerate() {
        let (cols, vals) = a.row_entries(row);
        let ax = spmv_row_naive(cols, vals, x);
        let val = <TV::Accum as Scalar>::from_f64(b[row].to_f64())
            - <TV::Accum as Scalar>::from_f64(ax.to_f64());
        *ri = TV::from_f64(val.to_f64());
    }
}

/// Reference dot product: per-element `f64` round trip + scalar `mul_add`,
/// accumulated in `T::Accum` and returned as `f64`.
#[must_use]
pub fn dot_naive<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = <T::Accum as Scalar>::zero();
    for (&a, &b) in x.iter().zip(y.iter()) {
        let a = <T::Accum as Scalar>::from_f64(a.to_f64());
        let b = <T::Accum as Scalar>::from_f64(b.to_f64());
        acc = a.mul_add(b, acc);
    }
    acc.to_f64()
}

/// Reference Euclidean norm.
#[must_use]
pub fn norm2_naive<T: Scalar>(x: &[T]) -> f64 {
    dot_naive(x, x).sqrt()
}

/// Reference `y ← y + alpha * x`: rounds `alpha` into `T` and uses a
/// per-element `mul_add` in the storage precision.
pub fn axpy_naive<T: Scalar>(alpha: f64, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let a = T::from_f64(alpha);
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = xi.mul_add(a, *yi);
    }
}

/// Reference `y ← alpha * x + beta * y` in the storage precision.
pub fn axpby_naive<T: Scalar>(alpha: f64, x: &[T], beta: f64, y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    let a = T::from_f64(alpha);
    let b = T::from_f64(beta);
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = xi * a + *yi * b;
    }
}

/// Reference `w ← alpha * x + beta * y` in the storage precision.
pub fn waxpby_naive<T: Scalar>(alpha: f64, x: &[T], beta: f64, y: &[T], w: &mut [T]) {
    assert_eq!(x.len(), y.len(), "waxpby: length mismatch");
    assert_eq!(x.len(), w.len(), "waxpby: length mismatch");
    let a = T::from_f64(alpha);
    let b = T::from_f64(beta);
    for i in 0..x.len() {
        w[i] = x[i] * a + y[i] * b;
    }
}

/// Reference `x ← alpha * x` in the storage precision.
pub fn scale_naive<T: Scalar>(alpha: f64, x: &mut [T]) {
    let a = T::from_f64(alpha);
    for xi in x.iter_mut() {
        *xi *= a;
    }
}
