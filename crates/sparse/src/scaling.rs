//! Diagonal (Jacobi) scaling of linear systems.
//!
//! Section 5 of the paper states "we applied diagonal scaling to all
//! matrices".  The standard symmetric form is used here:
//! `Â = D^{-1/2} A D^{-1/2}` with `D = diag(|a_ii|)`, together with the
//! matching right-hand-side transformation `b̂ = D^{-1/2} b` and solution
//! recovery `x = D^{-1/2} x̂`.  The transformation preserves symmetry, makes
//! the diagonal ±1, and (crucially for this paper) brings the dynamic range
//! of the matrix entries into territory that is representable in fp16.

use f3r_precision::Scalar;

use crate::csr::CsrMatrix;

/// A diagonally scaled linear system `Â x̂ = b̂` together with the scaling
/// vector needed to map solutions back to the original variables.
#[derive(Debug, Clone)]
pub struct ScaledSystem {
    /// The scaled matrix `D^{-1/2} A D^{-1/2}`.
    pub matrix: CsrMatrix<f64>,
    /// The scaling vector `d_i = 1 / sqrt(|a_ii|)`.
    pub scale: Vec<f64>,
}

impl ScaledSystem {
    /// Apply symmetric diagonal scaling to `a`.
    ///
    /// Rows with a zero (or missing) diagonal keep a unit scale factor so the
    /// transformation stays well defined.
    #[must_use]
    pub fn new(a: &CsrMatrix<f64>) -> Self {
        let diag = a.diagonal();
        let scale: Vec<f64> = diag
            .iter()
            .map(|&d| {
                let m = d.abs();
                if m > 0.0 {
                    1.0 / m.sqrt()
                } else {
                    1.0
                }
            })
            .collect();
        let matrix = a.scale_rows_cols(&scale, &scale);
        Self { matrix, scale }
    }

    /// Transform a right-hand side of the original system into the scaled
    /// system: `b̂ = D^{-1/2} b`.
    #[must_use]
    pub fn scale_rhs(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.scale.len(), "rhs length mismatch");
        b.iter().zip(self.scale.iter()).map(|(&bi, &s)| bi * s).collect()
    }

    /// Map a solution of the scaled system back to the original variables:
    /// `x = D^{-1/2} x̂`.
    #[must_use]
    pub fn unscale_solution(&self, x_hat: &[f64]) -> Vec<f64> {
        assert_eq!(x_hat.len(), self.scale.len(), "solution length mismatch");
        x_hat
            .iter()
            .zip(self.scale.iter())
            .map(|(&xi, &s)| xi * s)
            .collect()
    }
}

/// Convenience helper: symmetric Jacobi scaling returning only the scaled
/// matrix (the form used when the right-hand side is generated directly for
/// the scaled system, as in the paper's experiments).
#[must_use]
pub fn jacobi_scale<T: Scalar>(a: &CsrMatrix<T>) -> CsrMatrix<T> {
    let diag = a.diagonal();
    let scale: Vec<f64> = diag
        .iter()
        .map(|d| {
            let m = d.to_f64().abs();
            if m > 0.0 {
                1.0 / m.sqrt()
            } else {
                1.0
            }
        })
        .collect();
    a.scale_rows_cols(&scale, &scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::laplacian::poisson2d_5pt;
    use crate::spmv::spmv_seq;

    #[test]
    fn scaled_matrix_has_unit_diagonal() {
        let a = poisson2d_5pt(8, 8);
        let s = ScaledSystem::new(&a);
        for i in 0..a.n_rows() {
            assert!((s.matrix.get(i, i).unwrap() - 1.0).abs() < 1e-12);
        }
        assert!(s.matrix.is_symmetric(1e-12));
    }

    #[test]
    fn solution_mapping_is_consistent() {
        // If x solves A x = b then x̂ = D^{1/2} x solves the scaled system with
        // b̂ = D^{-1/2} b; unscale_solution(x̂) must recover x.
        let a = poisson2d_5pt(6, 6);
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut b = vec![0.0; n];
        spmv_seq(&a, &x_true, &mut b);

        let s = ScaledSystem::new(&a);
        let b_hat = s.scale_rhs(&b);
        // x̂ = D^{1/2} x  (scale is D^{-1/2}, so divide)
        let x_hat: Vec<f64> = x_true
            .iter()
            .zip(s.scale.iter())
            .map(|(&x, &d)| x / d)
            .collect();
        let mut ax_hat = vec![0.0; n];
        spmv_seq(&s.matrix, &x_hat, &mut ax_hat);
        for i in 0..n {
            assert!((ax_hat[i] - b_hat[i]).abs() < 1e-10);
        }
        let recovered = s.unscale_solution(&x_hat);
        for i in 0..n {
            assert!((recovered[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_scale_shrinks_dynamic_range_into_fp16() {
        // A matrix with a huge diagonal would overflow fp16 storage; after
        // scaling, every entry is O(1).
        let mut a = poisson2d_5pt(8, 8);
        a.scale_diagonal(1.0e6);
        assert!(a.max_abs() > 65504.0);
        let scaled = jacobi_scale(&a);
        assert!(scaled.max_abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn zero_diagonal_rows_keep_unit_scale() {
        use crate::coo::CooMatrix;
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 1, 4.0);
        let a = coo.to_csr();
        let s = ScaledSystem::new(&a);
        assert_eq!(s.scale[0], 1.0);
        assert!((s.scale[1] - 0.5).abs() < 1e-14);
    }
}
