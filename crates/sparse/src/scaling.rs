//! Diagonal (Jacobi) scaling of linear systems and shared scale helpers.
//!
//! Section 5 of the paper states "we applied diagonal scaling to all
//! matrices".  The standard symmetric form is used here:
//! `Â = D^{-1/2} A D^{-1/2}` with `D = diag(|a_ii|)`, together with the
//! matching right-hand-side transformation `b̂ = D^{-1/2} b` and solution
//! recovery `x = D^{-1/2} x̂`.  The transformation preserves symmetry, makes
//! the diagonal ±1, and (crucially for this paper) brings the dynamic range
//! of the matrix entries into territory that is representable in fp16.
//!
//! This module also hosts the *amplitude* scale helpers shared by the
//! compressed-basis kernels ([`crate::blas1::narrow_scaled_into`]) and the
//! scaled matrix storage ([`crate::csr::ScaledCsr`]): power-of-two scales
//! chosen so the stored values satisfy `|stored| <= 1`, which keeps narrow
//! storage inside its exponent range while the division by the scale stays
//! bit-exact.

use f3r_precision::Scalar;

use crate::csr::CsrMatrix;

/// The symmetric Jacobi scale vector `d_i = 1 / sqrt(|a_ii|)` of a matrix.
///
/// Rows with a zero (or missing) diagonal keep a unit scale factor so the
/// transformation stays well defined.  This is the single row/column-scale
/// computation behind both [`ScaledSystem::new`] and [`jacobi_scale`].
#[must_use]
pub fn inv_sqrt_diag_scale<T: Scalar>(a: &CsrMatrix<T>) -> Vec<f64> {
    a.diagonal()
        .iter()
        .map(|d| {
            let m = d.to_f64().abs();
            if m > 0.0 {
                1.0 / m.sqrt()
            } else {
                1.0
            }
        })
        .collect()
}

/// The smallest power of two at least `amax` (`0.0` for a zero amplitude,
/// non-finite input propagated), clamped to the largest finite power of two
/// `2^1023`.
///
/// This is the amplitude-scale convention shared by the compressed basis
/// storage and the scaled matrix storage: dividing by a power of two is exact
/// in binary floating point, so normalising a vector (or matrix row) by this
/// scale costs no accuracy beyond the final narrowing, while guaranteeing the
/// stored magnitudes are at most one.  The clamp covers amplitudes in
/// `(2^1023, f64::MAX]`, where the unclamped `2^1024` would overflow to +∞
/// and zero out the stored values; under the clamp those extreme rows store
/// magnitudes in `(1, 2)` — still far inside even fp16's finite range.
#[inline]
#[must_use]
pub fn pow2_amplitude(amax: f64) -> f64 {
    if amax == 0.0 {
        0.0
    } else if amax.is_finite() {
        amax.log2().ceil().exp2().min(2.0f64.powi(1023))
    } else {
        // Non-finite amplitudes propagate so downstream breakdown checks
        // still fire.
        amax
    }
}

/// Per-row power-of-two amplitude scales of a matrix: `scales[i]` is the
/// smallest `2^k >= max_j |a_ij|` (rows without nonzero entries get a unit
/// scale so `stored * scale` stays well defined).
///
/// Used by [`ScaledCsr`](crate::csr::ScaledCsr) /
/// [`ScaledSell`](crate::sell::ScaledSell): storing `a_ij / scales[i]` keeps
/// every stored magnitude at most one, making fp16 matrix storage robust for
/// any entry dynamic range across rows.
#[must_use]
pub fn pow2_row_scales<T: Scalar>(a: &CsrMatrix<T>) -> Vec<f64> {
    (0..a.n_rows())
        .map(|row| {
            let (_, vals) = a.row_entries(row);
            let amax = vals
                .iter()
                .map(|v| v.to_f64().abs())
                .fold(0.0f64, f64::max);
            let s = pow2_amplitude(amax);
            if s == 0.0 {
                1.0
            } else {
                s
            }
        })
        .collect()
}

/// A diagonally scaled linear system `Â x̂ = b̂` together with the scaling
/// vector needed to map solutions back to the original variables.
#[derive(Debug, Clone)]
pub struct ScaledSystem {
    /// The scaled matrix `D^{-1/2} A D^{-1/2}`.
    pub matrix: CsrMatrix<f64>,
    /// The scaling vector `d_i = 1 / sqrt(|a_ii|)`.
    pub scale: Vec<f64>,
}

impl ScaledSystem {
    /// Apply symmetric diagonal scaling to `a`.
    ///
    /// Rows with a zero (or missing) diagonal keep a unit scale factor so the
    /// transformation stays well defined.
    #[must_use]
    pub fn new(a: &CsrMatrix<f64>) -> Self {
        let scale = inv_sqrt_diag_scale(a);
        let matrix = a.scale_rows_cols(&scale, &scale);
        Self { matrix, scale }
    }

    /// Transform a right-hand side of the original system into the scaled
    /// system: `b̂ = D^{-1/2} b`.
    #[must_use]
    pub fn scale_rhs(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.scale.len(), "rhs length mismatch");
        b.iter().zip(self.scale.iter()).map(|(&bi, &s)| bi * s).collect()
    }

    /// Map a solution of the scaled system back to the original variables:
    /// `x = D^{-1/2} x̂`.
    #[must_use]
    pub fn unscale_solution(&self, x_hat: &[f64]) -> Vec<f64> {
        assert_eq!(x_hat.len(), self.scale.len(), "solution length mismatch");
        x_hat
            .iter()
            .zip(self.scale.iter())
            .map(|(&xi, &s)| xi * s)
            .collect()
    }
}

/// Convenience helper: symmetric Jacobi scaling returning only the scaled
/// matrix (the form used when the right-hand side is generated directly for
/// the scaled system, as in the paper's experiments).
#[must_use]
pub fn jacobi_scale<T: Scalar>(a: &CsrMatrix<T>) -> CsrMatrix<T> {
    let scale = inv_sqrt_diag_scale(a);
    a.scale_rows_cols(&scale, &scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::laplacian::poisson2d_5pt;
    use crate::spmv::spmv_seq;

    #[test]
    fn scaled_matrix_has_unit_diagonal() {
        let a = poisson2d_5pt(8, 8);
        let s = ScaledSystem::new(&a);
        for i in 0..a.n_rows() {
            assert!((s.matrix.get(i, i).unwrap() - 1.0).abs() < 1e-12);
        }
        assert!(s.matrix.is_symmetric(1e-12));
    }

    #[test]
    fn solution_mapping_is_consistent() {
        // If x solves A x = b then x̂ = D^{1/2} x solves the scaled system with
        // b̂ = D^{-1/2} b; unscale_solution(x̂) must recover x.
        let a = poisson2d_5pt(6, 6);
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut b = vec![0.0; n];
        spmv_seq(&a, &x_true, &mut b);

        let s = ScaledSystem::new(&a);
        let b_hat = s.scale_rhs(&b);
        // x̂ = D^{1/2} x  (scale is D^{-1/2}, so divide)
        let x_hat: Vec<f64> = x_true
            .iter()
            .zip(s.scale.iter())
            .map(|(&x, &d)| x / d)
            .collect();
        let mut ax_hat = vec![0.0; n];
        spmv_seq(&s.matrix, &x_hat, &mut ax_hat);
        for i in 0..n {
            assert!((ax_hat[i] - b_hat[i]).abs() < 1e-10);
        }
        let recovered = s.unscale_solution(&x_hat);
        for i in 0..n {
            assert!((recovered[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_scale_shrinks_dynamic_range_into_fp16() {
        // A matrix with a huge diagonal would overflow fp16 storage; after
        // scaling, every entry is O(1).
        let mut a = poisson2d_5pt(8, 8);
        a.scale_diagonal(1.0e6);
        assert!(a.max_abs() > 65504.0);
        let scaled = jacobi_scale(&a);
        assert!(scaled.max_abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn jacobi_scale_and_scaled_system_share_the_scale_computation() {
        let mut a = poisson2d_5pt(5, 5);
        a.scale_diagonal(3.7);
        let s = ScaledSystem::new(&a);
        assert_eq!(s.scale, inv_sqrt_diag_scale(&a));
        assert_eq!(jacobi_scale(&a), s.matrix);
    }

    #[test]
    fn zero_diagonal_rows_keep_unit_scale() {
        use crate::coo::CooMatrix;
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 1, 4.0);
        let a = coo.to_csr();
        let s = ScaledSystem::new(&a);
        assert_eq!(s.scale[0], 1.0);
        assert!((s.scale[1] - 0.5).abs() < 1e-14);
    }

    #[test]
    fn pow2_amplitude_convention() {
        assert_eq!(pow2_amplitude(0.0), 0.0);
        assert_eq!(pow2_amplitude(1.0), 1.0);
        assert_eq!(pow2_amplitude(1.5), 2.0);
        assert_eq!(pow2_amplitude(4.0), 4.0);
        assert_eq!(pow2_amplitude(1.0e-12), 2.0f64.powi(-39));
        assert!(pow2_amplitude(f64::INFINITY).is_infinite());
        // Top edge: amplitudes beyond 2^1023 clamp to the largest finite
        // power of two instead of overflowing the scale to +inf.
        assert_eq!(pow2_amplitude(1.0e308), 2.0f64.powi(1023));
        assert_eq!(pow2_amplitude(f64::MAX), 2.0f64.powi(1023));
    }

    #[test]
    fn scaled_storage_survives_near_max_row_amplitudes() {
        use crate::csr::ScaledCsr;
        use crate::spmv::{spmv_scaled_seq, spmv_seq};
        let mut coo = crate::coo::CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0e308);
        coo.push(0, 1, -0.5e308);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        let s = ScaledCsr::<half::f16>::from_f64(&a);
        assert!(s.row_scales().iter().all(|r| r.is_finite()));
        assert!(s.matrix().values().iter().all(|v| v.to_f64().is_finite()));
        let x = vec![0.5f64, 0.25];
        let mut y_ref = vec![0.0f64; 2];
        let mut y = vec![0.0f64; 2];
        spmv_seq(&a, &x, &mut y_ref);
        spmv_scaled_seq(&s, &x, &mut y);
        for i in 0..2 {
            assert!(y[i].is_finite());
            assert!((y[i] - y_ref[i]).abs() <= 2.0f64.powi(-9) * s.row_scales()[i]);
        }
    }

    #[test]
    fn pow2_row_scales_bound_each_row() {
        use crate::coo::CooMatrix;
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 3.0e8);
        coo.push(0, 1, -1.0);
        coo.push(1, 1, 1.0e-11);
        // row 2 left empty
        let a = coo.to_csr();
        let s = pow2_row_scales(&a);
        assert_eq!(s.len(), 3);
        for (row, &si) in s.iter().enumerate() {
            let (_, vals) = a.row_entries(row);
            for v in vals {
                assert!((v / si).abs() <= 1.0, "row {row}");
            }
            assert_eq!(si.log2().fract(), 0.0, "row {row} scale is a power of two");
        }
        assert_eq!(s[2], 1.0, "empty rows keep a unit scale");
    }
}
