//! Sliced ELLPACK (SELL-C) storage.
//!
//! The GPU experiments of the paper (Section 5.2) store matrices in the
//! sliced ELLPACK format of Monakov et al. with a chunk (slice) size of 32.
//! Rows are grouped into chunks; within a chunk every row is padded to the
//! length of the longest row, and values are laid out column-major inside
//! the chunk so that consecutive lanes access consecutive memory.  The same
//! layout is reproduced here and consumed by
//! [`crate::spmv::spmv_sell`]; it serves as the "GPU backend" of the
//! experiment harness.

use f3r_precision::{Precision, Scalar};

use crate::csr::{CsrMatrix, ScaledCsr};

/// A sparse matrix in sliced ELLPACK format with a fixed chunk size.
#[derive(Debug, Clone, PartialEq)]
pub struct SellMatrix<T> {
    n_rows: usize,
    n_cols: usize,
    chunk: usize,
    /// Width (padded row length) of each chunk.
    chunk_width: Vec<usize>,
    /// Start offset of each chunk in `col_idx`/`values`.
    chunk_ptr: Vec<usize>,
    /// Column indices, column-major within each chunk; padding lanes store
    /// the row's own index so gathers stay in bounds.
    col_idx: Vec<u32>,
    /// Values, column-major within each chunk; padding lanes store zero.
    values: Vec<T>,
    nnz: usize,
}

impl<T: Scalar> SellMatrix<T> {
    /// Convert a CSR matrix into sliced ELLPACK with the given chunk size.
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    #[must_use]
    pub fn from_csr(a: &CsrMatrix<T>, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        let n_rows = a.n_rows();
        let n_chunks = n_rows.div_ceil(chunk);
        let mut chunk_width = vec![0usize; n_chunks];
        for row in 0..n_rows {
            let len = a.row_entries(row).0.len();
            let c = row / chunk;
            chunk_width[c] = chunk_width[c].max(len);
        }
        let mut chunk_ptr = vec![0usize; n_chunks + 1];
        for c in 0..n_chunks {
            chunk_ptr[c + 1] = chunk_ptr[c] + chunk_width[c] * chunk;
        }
        let total = chunk_ptr[n_chunks];
        let mut col_idx = vec![0u32; total];
        let mut values = vec![T::zero(); total];
        for row in 0..n_rows {
            let c = row / chunk;
            let lane = row % chunk;
            let base = chunk_ptr[c];
            let width = chunk_width[c];
            let (cols, vals) = a.row_entries(row);
            for k in 0..width {
                let pos = base + k * chunk + lane;
                if k < cols.len() {
                    col_idx[pos] = cols[k];
                    values[pos] = vals[k];
                } else {
                    // padding: point at the row itself with a zero value
                    col_idx[pos] = row as u32;
                    values[pos] = T::zero();
                }
            }
        }
        Self {
            n_rows,
            n_cols: a.n_cols(),
            chunk,
            chunk_width,
            chunk_ptr,
            col_idx,
            values,
            nnz: a.nnz(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of logical (unpadded) nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Chunk (slice) size.
    #[must_use]
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Number of stored slots including padding.
    #[must_use]
    pub fn padded_len(&self) -> usize {
        self.values.len()
    }

    /// Padding overhead: stored slots divided by logical nonzeros.
    #[must_use]
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.padded_len() as f64 / self.nnz as f64
        }
    }

    /// Iterate over the (column, value) pairs of one row, including padding
    /// slots (whose value is exactly zero, so they do not affect products).
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let c = row / self.chunk;
        let lane = row % self.chunk;
        let base = self.chunk_ptr[c];
        let width = self.chunk_width[c];
        let chunk = self.chunk;
        (0..width).map(move |k| {
            let pos = base + k * chunk + lane;
            (self.col_idx[pos] as usize, self.values[pos])
        })
    }

    /// Raw lane view of one row for streaming kernels: column/value slices
    /// beginning at the row's first lane slot, the stride between
    /// consecutive lanes, and the row's padded width.
    ///
    /// The row's `k`-th (possibly padding) entry lives at offset
    /// `k * stride` of both slices, for `k < width`.  Padding entries store
    /// a zero value and the row's own column index, so kernels can consume
    /// all `width` lanes unconditionally.
    #[must_use]
    pub fn row_lanes(&self, row: usize) -> (&[u32], &[T], usize, usize) {
        let c = row / self.chunk;
        let lane = row % self.chunk;
        let end = self.chunk_ptr[c + 1];
        // A chunk of all-empty rows has width 0; clamp so the slices stay
        // valid (the returned width of 0 means kernels read nothing).
        let base = (self.chunk_ptr[c] + lane).min(end);
        (
            &self.col_idx[base..end],
            &self.values[base..end],
            self.chunk,
            self.chunk_width[c],
        )
    }

    /// Bytes used to store the matrix (padded values + padded 32-bit column
    /// indices + chunk bookkeeping).
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        (self.padded_len() as u64) * (T::PRECISION.bytes() as u64 + 4)
            + 8 * (self.chunk_ptr.len() as u64 + self.chunk_width.len() as u64)
    }

    /// Convert the stored values to another precision, keeping the layout.
    #[must_use]
    pub fn to_precision<D: Scalar>(&self) -> SellMatrix<D> {
        SellMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            chunk: self.chunk,
            chunk_width: self.chunk_width.clone(),
            chunk_ptr: self.chunk_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|v| D::from_f64(v.to_f64())).collect(),
            nnz: self.nnz,
        }
    }
}

/// A sliced-ELLPACK matrix stored in precision `S` with one power-of-two
/// `f64` amplitude scale per row — the SELL twin of
/// [`ScaledCsr`] (see there for the scaling convention), used by the
/// GPU-node backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledSell<S> {
    matrix: SellMatrix<S>,
    row_scales: Vec<f64>,
}

impl<S: Scalar> ScaledSell<S> {
    /// Build the scaled storage-precision SELL copy of `a` with the given
    /// chunk size.  The row scales are computed once on the CSR form; the
    /// padding lanes store zero, which any row scale represents exactly.
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    #[must_use]
    pub fn from_csr_f64(a: &CsrMatrix<f64>, chunk: usize) -> Self {
        let (scaled_csr, row_scales) = ScaledCsr::<S>::from_f64(a).into_parts();
        Self {
            matrix: SellMatrix::from_csr(&scaled_csr, chunk),
            row_scales,
        }
    }

    /// The stored (row-normalised) SELL matrix.
    #[must_use]
    pub fn matrix(&self) -> &SellMatrix<S> {
        &self.matrix
    }

    /// The per-row power-of-two amplitude scales.
    #[must_use]
    pub fn row_scales(&self) -> &[f64] {
        &self.row_scales
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.matrix.n_rows()
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.matrix.n_cols()
    }

    /// Number of logical (unpadded) nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// The precision in which values are stored.
    #[must_use]
    pub fn value_precision(&self) -> Precision {
        S::PRECISION
    }

    /// Bytes used by the padded values/indices plus the per-row `f64` scales.
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        self.matrix.storage_bytes() + 8 * self.n_rows() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn irregular() -> CsrMatrix<f64> {
        // rows with 1, 3, 2, 0, 4 nonzeros
        let mut coo = CooMatrix::new(5, 5);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(1, 4, 4.0);
        coo.push(2, 2, 5.0);
        coo.push(2, 3, 6.0);
        coo.push(4, 0, 7.0);
        coo.push(4, 1, 8.0);
        coo.push(4, 2, 9.0);
        coo.push(4, 4, 10.0);
        coo.to_csr()
    }

    #[test]
    fn conversion_preserves_entries() {
        let a = irregular();
        let s = SellMatrix::from_csr(&a, 2);
        assert_eq!(s.nnz(), a.nnz());
        assert_eq!(s.n_rows(), 5);
        for row in 0..5 {
            let mut dense = vec![0.0; 5];
            for (c, v) in s.row_iter(row) {
                dense[c] += v;
            }
            let (cols, vals) = a.row_entries(row);
            let mut expect = vec![0.0; 5];
            for (&c, &v) in cols.iter().zip(vals) {
                expect[c as usize] = v;
            }
            assert_eq!(dense, expect, "row {row}");
        }
    }

    #[test]
    fn padding_ratio_reflects_irregularity() {
        let a = irregular();
        let s1 = SellMatrix::from_csr(&a, 1); // per-row chunks: no padding
        let s5 = SellMatrix::from_csr(&a, 5); // single chunk padded to 4
        assert!((s1.padding_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(s5.padded_len(), 20);
        assert!(s5.padding_ratio() > 1.9);
    }

    #[test]
    fn chunk_size_32_paper_default() {
        let a = irregular();
        let s = SellMatrix::from_csr(&a, 32);
        assert_eq!(s.chunk_size(), 32);
        // One chunk of width 4 padded to 32 lanes.
        assert_eq!(s.padded_len(), 4 * 32);
    }

    #[test]
    fn precision_cast_keeps_layout() {
        let a = irregular();
        let s = SellMatrix::from_csr(&a, 2);
        let s16 = s.to_precision::<half::f16>();
        assert_eq!(s16.padded_len(), s.padded_len());
        assert!(s16.storage_bytes() < s.storage_bytes());
    }

    #[test]
    fn scaled_sell_mirrors_scaled_csr() {
        let mut a = irregular();
        // Blow the amplitudes far out of fp16 range.
        for v in a.values_mut() {
            *v *= 1.0e8;
        }
        let scaled = ScaledSell::<half::f16>::from_csr_f64(&a, 2);
        assert_eq!(scaled.nnz(), a.nnz());
        assert_eq!(scaled.value_precision(), Precision::Fp16);
        assert_eq!(
            scaled.row_scales(),
            crate::scaling::pow2_row_scales(&a).as_slice()
        );
        for row in 0..a.n_rows() {
            let mut dense = vec![0.0f64; a.n_cols()];
            for (c, v) in scaled.matrix().row_iter(row) {
                dense[c] += v.to_f64() * scaled.row_scales()[row];
            }
            let (cols, vals) = a.row_entries(row);
            let amax = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                assert!((dense[c as usize] - v).abs() <= amax * 2.0f64.powi(-10));
            }
        }
        assert_eq!(
            scaled.storage_bytes(),
            scaled.matrix().storage_bytes() + 8 * 5
        );
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        let a = irregular();
        let _ = SellMatrix::from_csr(&a, 0);
    }
}
