//! Mixed-precision sparse matrix–vector products with direct widening.
//!
//! The SpMV kernels are the dominant memory-bound kernels of every solver in
//! the paper.  They are generic over two precisions:
//!
//! * `TA` — the precision in which the matrix values are *stored*
//!   (fp64/fp32/fp16 depending on the nesting level, Table 1),
//! * `TV` — the precision of the input/output vectors.
//!
//! Arithmetic follows the paper's rule that "higher-precision instructions
//! are used when the inputs differ in precision": each row accumulates in
//! `TV::Accum` (fp32 when the vectors are fp16, otherwise the vector
//! precision itself).
//!
//! # The widening convention
//!
//! Every stored operand enters the accumulator through a **single direct
//! conversion**: vector entries via [`Scalar::widen`] (`f16 → f32` is one
//! instruction/bit-cast sequence, `f32`/`f64` are the identity) and matrix
//! values via [`FromScalar::from_scalar`] (`TA → TV::Accum` directly).  The
//! historical kernels instead converted *every element* through `f64`
//! (`from_f64(x.to_f64())`) and issued a scalar `mul_add` per element — two
//! extra rounding steps and a libm call on targets without FMA, which
//! blocked autovectorisation and erased the bandwidth advantage of narrow
//! storage.  Those kernels are preserved in [`crate::reference`] for
//! correctness baselines and benchmarks.
//!
//! Inner loops are unrolled four ways over independent partial accumulators
//! so LLVM can keep several chains in flight; results are reduced pairwise
//! and rounded back once per row with [`Scalar::narrow`].
//!
//! Every kernel has a sequential and a thread-parallel variant (chunk tasks
//! on the persistent `f3r-parallel` worker pool); the un-suffixed entry
//! points dispatch on problem size so small systems do not pay even the
//! pool's (small) dispatch overhead.
//!
//! # SIMD backend
//!
//! Row accumulators are computed through the runtime-dispatched `f3r-simd`
//! backend when it is active: CSR rows with at least eight entries go
//! through gather-based vector kernels ([`f3r_simd::try_spmv_row`]), SELL
//! chunks whose height is a multiple of eight are processed eight rows at a
//! time ([`f3r_simd::try_sell_group8`]).  Whether a given row takes the SIMD
//! or the scalar path depends only on *global* properties (latched backend,
//! row length, chunk geometry, vector length) — never on which parallel task
//! computes it — so the sequential and parallel variants stay bit-identical,
//! as the tests assert.  Accumulation order inside a SIMD row differs from
//! the scalar chains (8/4 lanes with FMA instead of 4/2 scalar chains), so
//! row results agree with the scalar backend within the usual reduction
//! bounds rather than bitwise; everything downstream of the row accumulator
//! (narrowing, scale folds, fused dots) is unchanged.

use f3r_precision::{FromScalar, Scalar};

use crate::csr::{CsrMatrix, ScaledCsr};
use crate::sell::{ScaledSell, SellMatrix};

/// Row count at or above which the dispatching wrappers switch to the
/// parallel kernels (re-exported from the shared threshold table in
/// `f3r-parallel`).
pub use f3r_parallel::thresholds::PAR_ROW_THRESHOLD;

use f3r_parallel::thresholds::MIN_ROWS_PER_TASK;

/// One CSR row: unrolled multi-accumulator dot of the row against `x`,
/// returned in the accumulation precision (callers narrow once).
///
/// The gathers skip per-element bounds checks: every public kernel asserts
/// `x.len() == a.n_cols()` on entry, and [`CsrMatrix::from_parts`] validates
/// that every stored column index is `< n_cols`, so the indices are in range
/// by construction (also re-checked with `debug_assert!` here).
#[inline(always)]
fn spmv_row<TA: Scalar, TV: Scalar>(cols: &[u32], vals: &[TA], x: &[TV]) -> TV::Accum {
    let gather = |c: u32| -> TV {
        debug_assert!((c as usize) < x.len(), "CSR column index out of range");
        // SAFETY: see function docs — the CSR constructor bounds all column
        // indices by n_cols and callers assert x.len() == n_cols.
        unsafe { *x.get_unchecked(c as usize) }
    };
    let mut acc0 = <TV::Accum as Scalar>::zero();
    let mut acc1 = <TV::Accum as Scalar>::zero();
    let mut acc2 = <TV::Accum as Scalar>::zero();
    let mut acc3 = <TV::Accum as Scalar>::zero();
    let mut c4 = cols.chunks_exact(4);
    let mut v4 = vals.chunks_exact(4);
    for (c, v) in (&mut c4).zip(&mut v4) {
        acc0 += <TV::Accum as FromScalar>::from_scalar(v[0]) * gather(c[0]).widen();
        acc1 += <TV::Accum as FromScalar>::from_scalar(v[1]) * gather(c[1]).widen();
        acc2 += <TV::Accum as FromScalar>::from_scalar(v[2]) * gather(c[2]).widen();
        acc3 += <TV::Accum as FromScalar>::from_scalar(v[3]) * gather(c[3]).widen();
    }
    for (&c, &v) in c4.remainder().iter().zip(v4.remainder().iter()) {
        acc0 += <TV::Accum as FromScalar>::from_scalar(v) * gather(c).widen();
    }
    (acc0 + acc1) + (acc2 + acc3)
}

/// One CSR row through the kernel backend: the SIMD gather kernel when the
/// backend accepts the row (active backend, ≥ 8 entries, gather-safe vector
/// length), the scalar [`spmv_row`] otherwise.  The acceptance conditions
/// are global per (matrix, vector) pair, so sequential and parallel sweeps
/// make identical per-row choices.
#[inline(always)]
fn row_acc<TA: Scalar, TV: Scalar>(cols: &[u32], vals: &[TA], x: &[TV]) -> TV::Accum {
    // SAFETY: `try_spmv_row` requires every column index to be a valid index
    // into `x` — the CsrMatrix constructor invariant plus the public kernels'
    // `x.len() == n_cols` assertion (the same contract `spmv_row`'s unchecked
    // gathers rely on).
    if let Some(acc) = unsafe { f3r_simd::try_spmv_row(cols, vals, x) } {
        return acc;
    }
    spmv_row(cols, vals, x)
}

/// Sequential CSR SpMV: `y = A x`.
///
/// # Panics
/// Panics if the vector lengths do not match the matrix dimensions.
pub fn spmv_seq<TA: Scalar, TV: Scalar>(a: &CsrMatrix<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv: y length mismatch");
    for (row, yi) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row_entries(row);
        *yi = TV::narrow(row_acc(cols, vals, x));
    }
}

/// Thread-parallel CSR SpMV: `y = A x` (row-wise parallelism).
pub fn spmv_par<TA: Scalar, TV: Scalar>(a: &CsrMatrix<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv: y length mismatch");
    f3r_parallel::par_chunks_mut(y, MIN_ROWS_PER_TASK, |base, chunk| {
        for (i, yi) in chunk.iter_mut().enumerate() {
            let (cols, vals) = a.row_entries(base + i);
            *yi = TV::narrow(row_acc(cols, vals, x));
        }
    });
}

/// CSR SpMV dispatching between the sequential and parallel kernels based on
/// the number of rows.
pub fn spmv<TA: Scalar, TV: Scalar>(a: &CsrMatrix<TA>, x: &[TV], y: &mut [TV]) {
    if a.n_rows() >= PAR_ROW_THRESHOLD {
        spmv_par(a, x, y);
    } else {
        spmv_seq(a, x, y);
    }
}

/// Fused residual kernel: `r = b - A x`, accumulating in `TV::Accum`.
///
/// The subtraction happens in the accumulator *before* rounding, so the
/// fused kernel is one rounding step more accurate (and one memory sweep
/// cheaper) than `spmv` followed by an `axpby`.
pub fn spmv_residual<TA: Scalar, TV: Scalar>(
    a: &CsrMatrix<TA>,
    x: &[TV],
    b: &[TV],
    r: &mut [TV],
) {
    assert_eq!(x.len(), a.n_cols(), "residual: x length mismatch");
    assert_eq!(b.len(), a.n_rows(), "residual: b length mismatch");
    assert_eq!(r.len(), a.n_rows(), "residual: r length mismatch");
    let body = |base: usize, chunk: &mut [TV]| {
        for (i, ri) in chunk.iter_mut().enumerate() {
            let row = base + i;
            let (cols, vals) = a.row_entries(row);
            let ax = row_acc(cols, vals, x);
            *ri = TV::narrow(b[row].widen() - ax);
        }
    };
    if a.n_rows() >= PAR_ROW_THRESHOLD {
        f3r_parallel::par_chunks_mut(r, MIN_ROWS_PER_TASK, body);
    } else {
        body(0, r);
    }
}

/// Fused SpMV + dual dot product: computes `y = A x` and returns
/// `(uᵀ y, yᵀ y)` from the same sweep, with the dots accumulated in `f64`.
///
/// This is the kernel behind the adaptive Richardson weight (Algorithm 1):
/// `ω′ = (r, AMr) / (AMr, AMr)` needs exactly `A·(Mr)` plus those two dots,
/// and fusing them removes two full passes over `y` per weight update.
pub fn spmv_dot2<TA: Scalar, TV: Scalar>(
    a: &CsrMatrix<TA>,
    x: &[TV],
    u: &[TV],
    y: &mut [TV],
) -> (f64, f64) {
    assert_eq!(x.len(), a.n_cols(), "spmv_dot2: x length mismatch");
    assert_eq!(u.len(), a.n_rows(), "spmv_dot2: u length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv_dot2: y length mismatch");
    let body = |base: usize, chunk: &mut [TV]| -> (f64, f64) {
        let mut uy = 0.0f64;
        let mut yy = 0.0f64;
        for (i, yi) in chunk.iter_mut().enumerate() {
            let row = base + i;
            let (cols, vals) = a.row_entries(row);
            let acc = row_acc(cols, vals, x);
            // Round once, then accumulate the dots on the *stored* value so
            // the result is bit-identical to running the dots after the SpMV.
            let stored = TV::narrow(acc);
            *yi = stored;
            let w = stored.widen();
            uy += (u[row].widen() * w).to_f64();
            yy += (w * w).to_f64();
        }
        (uy, yy)
    };
    let partials = if a.n_rows() >= PAR_ROW_THRESHOLD {
        f3r_parallel::par_map_chunks_mut(y, MIN_ROWS_PER_TASK, body)
    } else {
        vec![body(0, y)]
    };
    partials
        .into_iter()
        .fold((0.0, 0.0), |(a0, a1), (b0, b1)| (a0 + b0, a1 + b1))
}

// ---------------------------------------------------------------------------
// Scaled-storage SpMV kernels.
//
// The fused kernels below consume `ScaledCsr` / `ScaledSell` directly: each
// stored element enters the row accumulator through the same single
// `FromScalar` widening as the plain kernels, and the row's power-of-two
// amplitude scale is folded into the accumulated sum once per row, in f64
// (exact — the scale is a power of two — and O(rows), not O(nnz)).  The
// stored matrix therefore streams at the storage precision's bandwidth; the
// scale fold costs one multiply and one rounding per row, which the plain
// kernels pay anyway as the final narrowing.
// ---------------------------------------------------------------------------

/// Fold a row's accumulated sum with its amplitude scale and round once into
/// the vector precision.
#[inline(always)]
fn fold_scale<TV: Scalar>(acc: TV::Accum, scale: f64) -> TV {
    TV::from_f64(acc.to_f64() * scale)
}

/// Sequential scaled CSR SpMV: `y = A x` with `A` in row-scaled storage.
///
/// # Panics
/// Panics if the vector lengths do not match the matrix dimensions.
pub fn spmv_scaled_seq<TA: Scalar, TV: Scalar>(a: &ScaledCsr<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "spmv_scaled: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv_scaled: y length mismatch");
    let (m, scales) = (a.matrix(), a.row_scales());
    for (row, yi) in y.iter_mut().enumerate() {
        let (cols, vals) = m.row_entries(row);
        *yi = fold_scale::<TV>(row_acc(cols, vals, x), scales[row]);
    }
}

/// Thread-parallel scaled CSR SpMV (row-wise parallelism).
pub fn spmv_scaled_par<TA: Scalar, TV: Scalar>(a: &ScaledCsr<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "spmv_scaled: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv_scaled: y length mismatch");
    let (m, scales) = (a.matrix(), a.row_scales());
    f3r_parallel::par_chunks_mut(y, MIN_ROWS_PER_TASK, |base, chunk| {
        for (i, yi) in chunk.iter_mut().enumerate() {
            let (cols, vals) = m.row_entries(base + i);
            *yi = fold_scale::<TV>(row_acc(cols, vals, x), scales[base + i]);
        }
    });
}

/// Scaled CSR SpMV dispatching on problem size (same threshold as [`spmv`]).
pub fn spmv_scaled<TA: Scalar, TV: Scalar>(a: &ScaledCsr<TA>, x: &[TV], y: &mut [TV]) {
    if a.n_rows() >= PAR_ROW_THRESHOLD {
        spmv_scaled_par(a, x, y);
    } else {
        spmv_scaled_seq(a, x, y);
    }
}

/// Fused scaled residual kernel: `r = b - A x` with `A` in row-scaled
/// storage, subtracting before the single rounding into `TV` (the scaled
/// twin of [`spmv_residual`]).
pub fn spmv_scaled_residual<TA: Scalar, TV: Scalar>(
    a: &ScaledCsr<TA>,
    x: &[TV],
    b: &[TV],
    r: &mut [TV],
) {
    assert_eq!(x.len(), a.n_cols(), "scaled residual: x length mismatch");
    assert_eq!(b.len(), a.n_rows(), "scaled residual: b length mismatch");
    assert_eq!(r.len(), a.n_rows(), "scaled residual: r length mismatch");
    let (m, scales) = (a.matrix(), a.row_scales());
    let body = |base: usize, chunk: &mut [TV]| {
        for (i, ri) in chunk.iter_mut().enumerate() {
            let row = base + i;
            let (cols, vals) = m.row_entries(row);
            let ax = row_acc(cols, vals, x).to_f64() * scales[row];
            *ri = TV::from_f64(b[row].to_f64() - ax);
        }
    };
    if a.n_rows() >= PAR_ROW_THRESHOLD {
        f3r_parallel::par_chunks_mut(r, MIN_ROWS_PER_TASK, body);
    } else {
        body(0, r);
    }
}

/// Fused scaled SpMV + dual dot product: `y = A x` with `A` in row-scaled
/// storage, returning `(uᵀ y, yᵀ y)` from the same sweep (the scaled twin of
/// [`spmv_dot2`]; dots accumulate in `f64` on the stored `y` values).
pub fn spmv_scaled_dot2<TA: Scalar, TV: Scalar>(
    a: &ScaledCsr<TA>,
    x: &[TV],
    u: &[TV],
    y: &mut [TV],
) -> (f64, f64) {
    assert_eq!(x.len(), a.n_cols(), "spmv_scaled_dot2: x length mismatch");
    assert_eq!(u.len(), a.n_rows(), "spmv_scaled_dot2: u length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv_scaled_dot2: y length mismatch");
    let (m, scales) = (a.matrix(), a.row_scales());
    let body = |base: usize, chunk: &mut [TV]| -> (f64, f64) {
        let mut uy = 0.0f64;
        let mut yy = 0.0f64;
        for (i, yi) in chunk.iter_mut().enumerate() {
            let row = base + i;
            let (cols, vals) = m.row_entries(row);
            let stored = fold_scale::<TV>(row_acc(cols, vals, x), scales[row]);
            *yi = stored;
            let w = stored.to_f64();
            uy += u[row].to_f64() * w;
            yy += w * w;
        }
        (uy, yy)
    };
    let partials = if a.n_rows() >= PAR_ROW_THRESHOLD {
        f3r_parallel::par_map_chunks_mut(y, MIN_ROWS_PER_TASK, body)
    } else {
        vec![body(0, y)]
    };
    partials
        .into_iter()
        .fold((0.0, 0.0), |(a0, a1), (b0, b1)| (a0 + b0, a1 + b1))
}

/// Sequential scaled sliced-ELLPACK SpMV: `y = A x`.
pub fn spmv_scaled_sell_seq<TA: Scalar, TV: Scalar>(
    a: &ScaledSell<TA>,
    x: &[TV],
    y: &mut [TV],
) {
    assert_eq!(x.len(), a.n_cols(), "scaled sell spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "scaled sell spmv: y length mismatch");
    let (m, scales) = (a.matrix(), a.row_scales());
    sell_sweep(m, x, 0, y.len(), |row, acc| {
        y[row] = fold_scale::<TV>(acc, scales[row]);
    });
}

/// Thread-parallel scaled sliced-ELLPACK SpMV.
pub fn spmv_scaled_sell_par<TA: Scalar, TV: Scalar>(
    a: &ScaledSell<TA>,
    x: &[TV],
    y: &mut [TV],
) {
    assert_eq!(x.len(), a.n_cols(), "scaled sell spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "scaled sell spmv: y length mismatch");
    let (m, scales) = (a.matrix(), a.row_scales());
    f3r_parallel::par_chunks_mut(y, MIN_ROWS_PER_TASK, |base, chunk| {
        sell_sweep(m, x, base, chunk.len(), |row, acc| {
            chunk[row - base] = fold_scale::<TV>(acc, scales[row]);
        });
    });
}

/// Scaled sliced-ELLPACK SpMV dispatching on problem size.
pub fn spmv_scaled_sell<TA: Scalar, TV: Scalar>(a: &ScaledSell<TA>, x: &[TV], y: &mut [TV]) {
    if a.n_rows() >= PAR_ROW_THRESHOLD {
        spmv_scaled_sell_par(a, x, y);
    } else {
        spmv_scaled_sell_seq(a, x, y);
    }
}

/// Sequential sliced-ELLPACK SpMV: `y = A x`.
///
/// This is the kernel used by the "GPU node" experiment configuration
/// (Section 5.2 uses sliced ELLPACK with a chunk size of 32).
pub fn spmv_sell_seq<TA: Scalar, TV: Scalar>(a: &SellMatrix<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "sell spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "sell spmv: y length mismatch");
    sell_sweep(a, x, 0, y.len(), |row, acc| {
        y[row] = TV::narrow(acc);
    });
}

/// Thread-parallel sliced-ELLPACK SpMV.
pub fn spmv_sell_par<TA: Scalar, TV: Scalar>(a: &SellMatrix<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "sell spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "sell spmv: y length mismatch");
    f3r_parallel::par_chunks_mut(y, MIN_ROWS_PER_TASK, |base, chunk| {
        sell_sweep(a, x, base, chunk.len(), |row, acc| {
            chunk[row - base] = TV::narrow(acc);
        });
    });
}

/// Sliced-ELLPACK SpMV dispatching on problem size.
pub fn spmv_sell<TA: Scalar, TV: Scalar>(a: &SellMatrix<TA>, x: &[TV], y: &mut [TV]) {
    if a.n_rows() >= PAR_ROW_THRESHOLD {
        spmv_sell_par(a, x, y);
    } else {
        spmv_sell_seq(a, x, y);
    }
}

/// Compute SELL rows `base .. base + count`, handing each row's accumulator
/// to `emit(row, acc)` (absolute row index).
///
/// When the SIMD backend is active and the chunk height is a multiple of
/// eight, rows are processed in *globally aligned* groups of eight
/// (rows `[8g, 8g + 8)`, all inside one chunk by the alignment): the column
/// lanes of the whole group load as one vector per lane position, so the
/// column-major SELL layout streams contiguously instead of gathering.  A
/// parallel task whose boundary cuts through a group computes the **full**
/// group and emits only its own rows — the few boundary rows are computed
/// twice (cheap, read-only) so every row's accumulator is identical no
/// matter which task computes it, keeping the sequential and parallel
/// variants bit-identical.  The trailing partial group (when `n_rows % 8 !=
/// 0`) and every row of a declined group fall back to the scalar
/// [`sell_row`], again a global property, so backend choice is per-row
/// deterministic.
#[inline(always)]
fn sell_sweep<TA: Scalar, TV: Scalar>(
    a: &SellMatrix<TA>,
    x: &[TV],
    base: usize,
    count: usize,
    mut emit: impl FnMut(usize, TV::Accum),
) {
    let end = base + count;
    let grouped = a.chunk_size().is_multiple_of(8)
        && x.len() <= f3r_simd::MAX_GATHER_LEN
        && f3r_simd::kernel_backend().is_simd();
    let mut row = base;
    while row < end {
        let g0 = row & !7;
        if grouped && g0 + 8 <= a.n_rows() {
            let (cols, vals, stride, width) = a.row_lanes(g0);
            // SAFETY: column indices are bounded by n_cols (SellMatrix
            // construction; padding lanes store the row's own index) and the
            // public kernels assert x.len() == n_cols.  The lane window is in
            // bounds: row_lanes(g0) slices run to the end of the chunk, whose
            // height is a multiple of 8 and whose lane offset g0 % chunk is
            // too, so `(width - 1) * stride + 8 <= slice length`.
            if let Some(accs) = unsafe { f3r_simd::try_sell_group8(cols, vals, stride, width, x) }
            {
                let hi = end.min(g0 + 8);
                while row < hi {
                    emit(row, accs[row - g0]);
                    row += 1;
                }
                continue;
            }
        }
        emit(row, sell_row(a, row, x));
        row += 1;
    }
}

// ---------------------------------------------------------------------------
// Multi-vector (SpMM) kernels.
//
// `spmv_multi` and its scaled/SELL twins multiply one matrix against a
// column-major panel of `k` vectors (column `c` of the input panel is
// `xs[c * n_cols .. (c + 1) * n_cols]`), writing a column-major output panel
// of the same width.  The matrix is streamed ONCE per call: each row's
// index/value entries are fetched once and reused across all k columns from
// registers/L1, so the matrix-stream traffic — the dominant term of every
// memory-bound solve — is amortized over the panel width.
//
// Per-column results are **bitwise identical** to the corresponding
// single-vector kernel applied to that column alone: widening is a pure
// function (re-widening a stored element per column equals widening it once
// and reusing it), and every column runs the exact same row accumulation
// (`row_acc`, `try_sell_group8`, `sell_row`) the single-vector sweeps use.
// The SIMD acceptance conditions depend only on the latched backend, the row
// geometry, and the column length — identical for every column of one panel
// — so the per-row kernel choice is uniform across columns and the
// seq == par bitwise rule carries over unchanged.
// ---------------------------------------------------------------------------

/// Shareable raw pointer for handing the column-major output panel to pool
/// tasks (the `f3r-parallel` `SyncPtr` idiom, replicated locally because a
/// panel task writes `k` *strided* slots per row — `c * n_rows + row` — not
/// one contiguous chunk, so `par_chunks_mut` cannot express the partition).
struct PanelPtr<T>(*mut T);

impl<T> PanelPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: only used by the `*_multi_par` kernels below, where every task
// owns a disjoint row range and writes only the slots `c * n_rows + row` of
// its own rows; the allocation outlives the batch (borrowed by the enclosing
// call, which does not return until the pool batch completes).
unsafe impl<T: Send> Send for PanelPtr<T> {}
// SAFETY: see above — concurrent tasks never write overlapping slots.
unsafe impl<T: Send> Sync for PanelPtr<T> {}

/// Rows per pool task for the panel kernels: [`MIN_ROWS_PER_TASK`] scaled
/// down by the panel width (each row moves ~k columns of vector traffic, so
/// a k-wide task hits the single-vector task's byte budget k× sooner),
/// floored so tasks stay well above the pool's dispatch cost.  Grain only
/// affects the partition, never per-row values, so it is free to depend on k.
fn panel_grain(k: usize) -> usize {
    (MIN_ROWS_PER_TASK / k.max(1)).max(512)
}

/// True when the panel kernels should take the parallel path: the total
/// work is `n_rows · k` row accumulations, so a narrow problem still goes
/// parallel once the panel is wide enough (deterministic in global
/// properties only, preserving the seq == par rule).
#[inline]
fn panel_parallel(n_rows: usize, k: usize) -> bool {
    n_rows.saturating_mul(k.max(1)) >= PAR_ROW_THRESHOLD
}

/// Sequential CSR SpMM: `Y = A X` on `k` column-major vectors.
///
/// Column `c` of the result is bitwise identical to `spmv_seq` applied to
/// column `c` of `xs`.
///
/// # Panics
/// Panics if `xs.len() != a.n_cols() * k` or `ys.len() != a.n_rows() * k`.
pub fn spmv_multi_seq<TA: Scalar, TV: Scalar>(
    a: &CsrMatrix<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    assert_eq!(xs.len(), a.n_cols() * k, "spmv_multi: xs length mismatch");
    assert_eq!(ys.len(), a.n_rows() * k, "spmv_multi: ys length mismatch");
    let (nr, nc) = (a.n_rows(), a.n_cols());
    for row in 0..nr {
        let (cols, vals) = a.row_entries(row);
        for c in 0..k {
            let x = &xs[c * nc..(c + 1) * nc];
            ys[c * nr + row] = TV::narrow(row_acc(cols, vals, x));
        }
    }
}

/// Thread-parallel CSR SpMM (row-range parallelism; every task computes all
/// `k` columns of its rows, so the partition stays row-disjoint).
pub fn spmv_multi_par<TA: Scalar, TV: Scalar>(
    a: &CsrMatrix<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    assert_eq!(xs.len(), a.n_cols() * k, "spmv_multi: xs length mismatch");
    assert_eq!(ys.len(), a.n_rows() * k, "spmv_multi: ys length mismatch");
    let (nr, nc) = (a.n_rows(), a.n_cols());
    let out = PanelPtr(ys.as_mut_ptr());
    let _: Vec<()> = f3r_parallel::par_map_ranges(nr, panel_grain(k), |rows| {
        for row in rows {
            let (cols, vals) = a.row_entries(row);
            for c in 0..k {
                let x = &xs[c * nc..(c + 1) * nc];
                let v = TV::narrow(row_acc(cols, vals, x));
                // SAFETY: this task owns `row`, so slot `c * nr + row` is
                // written by exactly one task; `ys` outlives the batch.
                unsafe { out.get().add(c * nr + row).write(v) };
            }
        }
    });
}

/// CSR SpMM dispatching between the sequential and parallel kernels on the
/// total work `n_rows · k`.
pub fn spmv_multi<TA: Scalar, TV: Scalar>(a: &CsrMatrix<TA>, xs: &[TV], ys: &mut [TV], k: usize) {
    if panel_parallel(a.n_rows(), k) {
        spmv_multi_par(a, xs, ys, k);
    } else {
        spmv_multi_seq(a, xs, ys, k);
    }
}

/// Sequential scaled CSR SpMM: `Y = A X` with `A` in row-scaled storage
/// (per-column bitwise identical to [`spmv_scaled_seq`]).
///
/// # Panics
/// Panics if the panel lengths do not match the matrix dimensions.
pub fn spmv_scaled_multi_seq<TA: Scalar, TV: Scalar>(
    a: &ScaledCsr<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    assert_eq!(xs.len(), a.n_cols() * k, "spmv_scaled_multi: xs length mismatch");
    assert_eq!(ys.len(), a.n_rows() * k, "spmv_scaled_multi: ys length mismatch");
    let (nr, nc) = (a.n_rows(), a.n_cols());
    let (m, scales) = (a.matrix(), a.row_scales());
    for row in 0..nr {
        let (cols, vals) = m.row_entries(row);
        for c in 0..k {
            let x = &xs[c * nc..(c + 1) * nc];
            ys[c * nr + row] = fold_scale::<TV>(row_acc(cols, vals, x), scales[row]);
        }
    }
}

/// Thread-parallel scaled CSR SpMM (row-range parallelism).
pub fn spmv_scaled_multi_par<TA: Scalar, TV: Scalar>(
    a: &ScaledCsr<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    assert_eq!(xs.len(), a.n_cols() * k, "spmv_scaled_multi: xs length mismatch");
    assert_eq!(ys.len(), a.n_rows() * k, "spmv_scaled_multi: ys length mismatch");
    let (nr, nc) = (a.n_rows(), a.n_cols());
    let (m, scales) = (a.matrix(), a.row_scales());
    let out = PanelPtr(ys.as_mut_ptr());
    let _: Vec<()> = f3r_parallel::par_map_ranges(nr, panel_grain(k), |rows| {
        for row in rows {
            let (cols, vals) = m.row_entries(row);
            for c in 0..k {
                let x = &xs[c * nc..(c + 1) * nc];
                let v = fold_scale::<TV>(row_acc(cols, vals, x), scales[row]);
                // SAFETY: disjoint rows per task (see `spmv_multi_par`).
                unsafe { out.get().add(c * nr + row).write(v) };
            }
        }
    });
}

/// Scaled CSR SpMM dispatching on the total work `n_rows · k`.
pub fn spmv_scaled_multi<TA: Scalar, TV: Scalar>(
    a: &ScaledCsr<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    if panel_parallel(a.n_rows(), k) {
        spmv_scaled_multi_par(a, xs, ys, k);
    } else {
        spmv_scaled_multi_seq(a, xs, ys, k);
    }
}

/// Sequential sliced-ELLPACK SpMM (per-column bitwise identical to
/// [`spmv_sell_seq`]).
///
/// # Panics
/// Panics if the panel lengths do not match the matrix dimensions.
pub fn spmv_sell_multi_seq<TA: Scalar, TV: Scalar>(
    a: &SellMatrix<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    assert_eq!(xs.len(), a.n_cols() * k, "sell spmm: xs length mismatch");
    assert_eq!(ys.len(), a.n_rows() * k, "sell spmm: ys length mismatch");
    let nr = a.n_rows();
    sell_sweep_multi(a, xs, k, 0, nr, |row, c, acc| {
        ys[c * nr + row] = TV::narrow(acc);
    });
}

/// Thread-parallel sliced-ELLPACK SpMM (row-range parallelism; boundary
/// groups are recomputed per task exactly as in [`spmv_sell_par`]).
pub fn spmv_sell_multi_par<TA: Scalar, TV: Scalar>(
    a: &SellMatrix<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    assert_eq!(xs.len(), a.n_cols() * k, "sell spmm: xs length mismatch");
    assert_eq!(ys.len(), a.n_rows() * k, "sell spmm: ys length mismatch");
    let nr = a.n_rows();
    let out = PanelPtr(ys.as_mut_ptr());
    let _: Vec<()> = f3r_parallel::par_map_ranges(nr, panel_grain(k), |rows| {
        sell_sweep_multi(a, xs, k, rows.start, rows.len(), |row, c, acc| {
            // SAFETY: disjoint rows per task (see `spmv_multi_par`); boundary
            // group rows outside `rows` are computed but never emitted.
            unsafe { out.get().add(c * nr + row).write(TV::narrow(acc)) };
        });
    });
}

/// Sliced-ELLPACK SpMM dispatching on the total work `n_rows · k`.
pub fn spmv_sell_multi<TA: Scalar, TV: Scalar>(
    a: &SellMatrix<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    if panel_parallel(a.n_rows(), k) {
        spmv_sell_multi_par(a, xs, ys, k);
    } else {
        spmv_sell_multi_seq(a, xs, ys, k);
    }
}

/// Sequential scaled sliced-ELLPACK SpMM (per-column bitwise identical to
/// [`spmv_scaled_sell_seq`]).
///
/// # Panics
/// Panics if the panel lengths do not match the matrix dimensions.
pub fn spmv_scaled_sell_multi_seq<TA: Scalar, TV: Scalar>(
    a: &ScaledSell<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    assert_eq!(xs.len(), a.n_cols() * k, "scaled sell spmm: xs length mismatch");
    assert_eq!(ys.len(), a.n_rows() * k, "scaled sell spmm: ys length mismatch");
    let nr = a.n_rows();
    let (m, scales) = (a.matrix(), a.row_scales());
    sell_sweep_multi(m, xs, k, 0, nr, |row, c, acc| {
        ys[c * nr + row] = fold_scale::<TV>(acc, scales[row]);
    });
}

/// Thread-parallel scaled sliced-ELLPACK SpMM (row-range parallelism).
pub fn spmv_scaled_sell_multi_par<TA: Scalar, TV: Scalar>(
    a: &ScaledSell<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    assert_eq!(xs.len(), a.n_cols() * k, "scaled sell spmm: xs length mismatch");
    assert_eq!(ys.len(), a.n_rows() * k, "scaled sell spmm: ys length mismatch");
    let nr = a.n_rows();
    let (m, scales) = (a.matrix(), a.row_scales());
    let out = PanelPtr(ys.as_mut_ptr());
    let _: Vec<()> = f3r_parallel::par_map_ranges(nr, panel_grain(k), |rows| {
        sell_sweep_multi(m, xs, k, rows.start, rows.len(), |row, c, acc| {
            // SAFETY: disjoint rows per task (see `spmv_multi_par`).
            unsafe {
                out.get()
                    .add(c * nr + row)
                    .write(fold_scale::<TV>(acc, scales[row]));
            }
        });
    });
}

/// Scaled sliced-ELLPACK SpMM dispatching on the total work `n_rows · k`.
pub fn spmv_scaled_sell_multi<TA: Scalar, TV: Scalar>(
    a: &ScaledSell<TA>,
    xs: &[TV],
    ys: &mut [TV],
    k: usize,
) {
    if panel_parallel(a.n_rows(), k) {
        spmv_scaled_sell_multi_par(a, xs, ys, k);
    } else {
        spmv_scaled_sell_multi_seq(a, xs, ys, k);
    }
}

/// Compute SELL rows `base .. base + count` against all `k` panel columns,
/// handing each accumulator to `emit(row, column, acc)`.
///
/// The multi-column twin of [`sell_sweep`]: each row group's lane window is
/// fetched **once** and swept against every column before moving on, so the
/// padded SELL layout streams through the cache a single time per call.  The
/// group kernel's acceptance (`try_sell_group8` returning `Some`) depends
/// only on the latched backend and the column length — both identical across
/// a panel's columns — so either every column of a group takes the SIMD path
/// or none does, and each column's accumulators match the single-vector
/// [`sell_sweep`] bit for bit.
#[inline(always)]
fn sell_sweep_multi<TA: Scalar, TV: Scalar>(
    a: &SellMatrix<TA>,
    xs: &[TV],
    k: usize,
    base: usize,
    count: usize,
    mut emit: impl FnMut(usize, usize, TV::Accum),
) {
    if k == 0 {
        return;
    }
    let nc = a.n_cols();
    let end = base + count;
    let grouped = a.chunk_size().is_multiple_of(8)
        && nc <= f3r_simd::MAX_GATHER_LEN
        && f3r_simd::kernel_backend().is_simd();
    let mut row = base;
    while row < end {
        let g0 = row & !7;
        if grouped && g0 + 8 <= a.n_rows() {
            let (cols, vals, stride, width) = a.row_lanes(g0);
            // SAFETY: same contract as `sell_sweep` — the SellMatrix
            // constructor bounds all column indices by n_cols, the callers
            // assert each panel column has n_cols elements, and the lane
            // window is in bounds because the chunk height and lane offset
            // are multiples of 8.
            let accs = unsafe { f3r_simd::try_sell_group8(cols, vals, stride, width, &xs[..nc]) };
            if let Some(accs) = accs {
                let hi = end.min(g0 + 8);
                for r in row..hi {
                    emit(r, 0, accs[r - g0]);
                }
                for c in 1..k {
                    let x = &xs[c * nc..(c + 1) * nc];
                    // SAFETY: as above; acceptance is uniform across columns
                    // (backend and x.len() are the only gates).
                    let accs = unsafe { f3r_simd::try_sell_group8(cols, vals, stride, width, x) }
                        .expect("SELL group acceptance is uniform across panel columns");
                    for r in row..hi {
                        emit(r, c, accs[r - g0]);
                    }
                }
                row = hi;
                continue;
            }
        }
        for c in 0..k {
            let x = &xs[c * nc..(c + 1) * nc];
            emit(row, c, sell_row(a, row, x));
        }
        row += 1;
    }
}

/// One sliced-ELLPACK row: strided walk over the row's lanes with the same
/// widen-into-accumulator scheme as the CSR kernel (two independent chains;
/// SELL rows are strided, so deeper unrolling buys nothing here).
#[inline(always)]
fn sell_row<TA: Scalar, TV: Scalar>(a: &SellMatrix<TA>, row: usize, x: &[TV]) -> TV::Accum {
    let (cols, vals, stride, width) = a.row_lanes(row);
    let mut acc0 = <TV::Accum as Scalar>::zero();
    let mut acc1 = <TV::Accum as Scalar>::zero();
    let mut k = 0usize;
    let twice = width & !1;
    while k < twice {
        let p0 = k * stride;
        let p1 = (k + 1) * stride;
        acc0 += <TV::Accum as FromScalar>::from_scalar(vals[p0]) * x[cols[p0] as usize].widen();
        acc1 += <TV::Accum as FromScalar>::from_scalar(vals[p1]) * x[cols[p1] as usize].widen();
        k += 2;
    }
    if k < width {
        let p = k * stride;
        acc0 += <TV::Accum as FromScalar>::from_scalar(vals[p]) * x[cols[p] as usize].widen();
    }
    acc0 + acc1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use half::f16;

    fn tridiag(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let a = tridiag(10);
        let x: Vec<f64> = (0..10).map(|i| (i as f64 + 1.0) * 0.1).collect();
        let mut y = vec![0.0; 10];
        spmv_seq(&a, &x, &mut y);
        for i in 0..10 {
            let mut expect = 2.0 * x[i];
            if i > 0 {
                expect -= x[i - 1];
            }
            if i + 1 < 10 {
                expect -= x[i + 1];
            }
            assert!((y[i] - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = tridiag(5000);
        let x: Vec<f64> = (0..5000).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; 5000];
        let mut y2 = vec![0.0; 5000];
        spmv_seq(&a, &x, &mut y1);
        spmv_par(&a, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn parallel_matches_sequential_above_threshold() {
        let n = PAR_ROW_THRESHOLD + 123;
        let a = tridiag(n);
        let x: Vec<f64> = (0..n).map(|i| ((i % 97) as f64 - 48.0) / 97.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        spmv_seq(&a, &x, &mut y1);
        spmv(&a, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn mixed_precision_fp16_matrix_fp32_vectors() {
        let a = tridiag(50);
        let a16: CsrMatrix<f16> = a.to_precision();
        let x: Vec<f32> = (0..50).map(|i| (i as f32 * 0.01).cos()).collect();
        let mut y64 = vec![0.0f64; 50];
        let x64: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
        spmv_seq(&a, &x64, &mut y64);
        let mut y = vec![0.0f32; 50];
        spmv_seq(&a16, &x, &mut y);
        for i in 0..50 {
            assert!(
                (f64::from(y[i]) - y64[i]).abs() < 1e-2,
                "row {i}: {} vs {}",
                y[i],
                y64[i]
            );
        }
    }

    #[test]
    fn pure_fp16_spmv_accumulates_in_fp32() {
        // With many same-sign terms an fp16 accumulation would visibly drift;
        // the f32 accumulation keeps the row sums near-exact for values that
        // are exactly representable in fp16.
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                coo.push(i, j, 1.0);
            }
        }
        let a: CsrMatrix<f16> = coo.to_csr().to_precision();
        let x = vec![f16::from_f32(1.0); n];
        let mut y = vec![f16::from_f32(0.0); n];
        spmv_seq(&a, &x, &mut y);
        for yi in &y {
            assert_eq!(yi.to_f64(), n as f64);
        }
    }

    #[test]
    fn residual_kernel_matches_separate_ops() {
        let a = tridiag(200);
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..200).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut ax = vec![0.0; 200];
        spmv_seq(&a, &x, &mut ax);
        let mut r = vec![0.0; 200];
        spmv_residual(&a, &x, &b, &mut r);
        for i in 0..200 {
            assert!((r[i] - (b[i] - ax[i])).abs() < 1e-14);
        }
    }

    #[test]
    fn fused_spmv_dot2_matches_separate_kernels() {
        let a = tridiag(300);
        let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.13).sin()).collect();
        let u: Vec<f64> = (0..300).map(|i| (i as f64 * 0.29).cos()).collect();
        let mut y1 = vec![0.0; 300];
        spmv_seq(&a, &x, &mut y1);
        let uy_ref: f64 = u.iter().zip(&y1).map(|(a, b)| a * b).sum();
        let yy_ref: f64 = y1.iter().map(|v| v * v).sum();
        let mut y2 = vec![0.0; 300];
        let (uy, yy) = spmv_dot2(&a, &x, &u, &mut y2);
        assert_eq!(y1, y2);
        assert!((uy - uy_ref).abs() < 1e-12 * uy_ref.abs().max(1.0));
        assert!((yy - yy_ref).abs() < 1e-12 * yy_ref.max(1.0));
    }

    #[test]
    fn fused_spmv_dot2_fp16_storage() {
        let a: CsrMatrix<f16> = tridiag(128).to_precision();
        let x: Vec<f32> = (0..128).map(|i| ((i % 7) as f32 - 3.0) / 7.0).collect();
        let u: Vec<f32> = (0..128).map(|i| ((i % 5) as f32 - 2.0) / 5.0).collect();
        let mut y1 = vec![0.0f32; 128];
        spmv_seq(&a, &x, &mut y1);
        let mut y2 = vec![0.0f32; 128];
        let (uy, yy) = spmv_dot2(&a, &x, &u, &mut y2);
        assert_eq!(y1, y2);
        let uy_ref: f64 = u.iter().zip(&y1).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
        let yy_ref: f64 = y1.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        assert!((uy - uy_ref).abs() < 1e-5 * uy_ref.abs().max(1.0));
        assert!((yy - yy_ref).abs() < 1e-5 * yy_ref.max(1.0));
    }

    #[test]
    fn sell_matches_csr() {
        let a = tridiag(1000);
        let sell = SellMatrix::from_csr(&a, 32);
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y1 = vec![0.0; 1000];
        let mut y2 = vec![0.0; 1000];
        let mut y3 = vec![0.0; 1000];
        spmv_seq(&a, &x, &mut y1);
        spmv_sell_seq(&sell, &x, &mut y2);
        spmv_sell_par(&sell, &x, &mut y3);
        for i in 0..1000 {
            assert!((y1[i] - y2[i]).abs() < 1e-13);
            assert!((y1[i] - y3[i]).abs() < 1e-13);
        }
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn dimension_mismatch_panics() {
        let a = tridiag(4);
        let x = vec![0.0f64; 3];
        let mut y = vec![0.0f64; 4];
        spmv_seq(&a, &x, &mut y);
    }

    /// Tridiagonal matrix whose row amplitudes sweep `1e-12 .. 1e12` — the
    /// unscaled fp16 copy is pure ±inf / 0.
    fn wide_range_tridiag(n: usize) -> CsrMatrix<f64> {
        let a = tridiag(n);
        let d: Vec<f64> = (0..n)
            .map(|i| 10f64.powf(-12.0 + 24.0 * i as f64 / (n - 1) as f64))
            .collect();
        a.scale_rows_cols(&d, &vec![1.0; n])
    }

    #[test]
    fn scaled_spmv_matches_f64_reference_on_wide_range_matrix() {
        let n = 300;
        let a = wide_range_tridiag(n);
        let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) / 13.0).collect();
        let mut y_ref = vec![0.0f64; n];
        spmv_seq(&a, &x, &mut y_ref);

        // The unscaled fp16 copy is useless here …
        let a16: CsrMatrix<f16> = a.to_precision();
        assert!(a16.values().iter().any(|v| !v.to_f64().is_finite()));

        // … the row-scaled fp16 copy matches to fp16 storage accuracy.
        let s16 = ScaledCsr::<f16>::from_f64(&a);
        let mut y = vec![0.0f64; n];
        spmv_scaled_seq(&s16, &x, &mut y);
        for i in 0..n {
            // Per-element storage error ≤ eps_fp16 · row_scale; ≤ 3 entries
            // per row with |x| ≤ 1/2 bounds the row error by 2^-9 · scale.
            let tol = 2.0f64.powi(-9) * s16.row_scales()[i];
            assert!(
                (y[i] - y_ref[i]).abs() <= tol,
                "row {i}: {} vs {}",
                y[i],
                y_ref[i]
            );
        }
    }

    #[test]
    fn scaled_f64_storage_is_bit_identical_to_plain_spmv() {
        let n = 500;
        let a = wide_range_tridiag(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut y1 = vec![0.0f64; n];
        let mut y2 = vec![0.0f64; n];
        spmv_seq(&a, &x, &mut y1);
        spmv_scaled_seq(&ScaledCsr::<f64>::from_f64(&a), &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn scaled_parallel_matches_sequential_above_threshold() {
        let n = PAR_ROW_THRESHOLD + 57;
        let a = tridiag(n);
        let s = ScaledCsr::<f32>::from_f64(&a);
        let x: Vec<f64> = (0..n).map(|i| ((i % 97) as f64 - 48.0) / 97.0).collect();
        let mut y1 = vec![0.0f64; n];
        let mut y2 = vec![0.0f64; n];
        spmv_scaled_seq(&s, &x, &mut y1);
        spmv_scaled(&s, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn scaled_residual_matches_separate_ops() {
        let n = 200;
        let a = wide_range_tridiag(n);
        let s = ScaledCsr::<f32>::from_f64(&a);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut ax = vec![0.0f64; n];
        spmv_scaled_seq(&s, &x, &mut ax);
        let mut r = vec![0.0f64; n];
        spmv_scaled_residual(&s, &x, &b, &mut r);
        for i in 0..n {
            assert!((r[i] - (b[i] - ax[i])).abs() <= 1e-12 * (b[i] - ax[i]).abs().max(1.0));
        }
    }

    #[test]
    fn scaled_spmv_dot2_matches_separate_kernels() {
        let n = 300;
        let a = tridiag(n);
        let s = ScaledCsr::<f16>::from_f64(&a);
        let x: Vec<f32> = (0..n).map(|i| ((i % 7) as f32 - 3.0) / 7.0).collect();
        let u: Vec<f32> = (0..n).map(|i| ((i % 5) as f32 - 2.0) / 5.0).collect();
        let mut y1 = vec![0.0f32; n];
        spmv_scaled_seq(&s, &x, &mut y1);
        let mut y2 = vec![0.0f32; n];
        let (uy, yy) = spmv_scaled_dot2(&s, &x, &u, &mut y2);
        assert_eq!(y1, y2);
        let uy_ref: f64 = u.iter().zip(&y1).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
        let yy_ref: f64 = y1.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        assert!((uy - uy_ref).abs() < 1e-10 * uy_ref.abs().max(1.0));
        assert!((yy - yy_ref).abs() < 1e-10 * yy_ref.max(1.0));
    }

    #[test]
    fn scaled_sell_matches_scaled_csr() {
        let n = 1000;
        let a = wide_range_tridiag(n);
        let csr = ScaledCsr::<f16>::from_f64(&a);
        let sell = ScaledSell::<f16>::from_csr_f64(&a, 32);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y1 = vec![0.0f64; n];
        let mut y2 = vec![0.0f64; n];
        let mut y3 = vec![0.0f64; n];
        spmv_scaled_seq(&csr, &x, &mut y1);
        spmv_scaled_sell_seq(&sell, &x, &mut y2);
        spmv_scaled_sell_par(&sell, &x, &mut y3);
        for i in 0..n {
            // CSR and SELL group the row sum differently (4 vs 2 partial
            // accumulators), so allow roundoff at the row amplitude.
            let tol = 1e-13 * csr.row_scales()[i];
            assert!((y1[i] - y2[i]).abs() <= tol, "row {i}: {} vs {}", y1[i], y2[i]);
            assert_eq!(y2[i], y3[i], "row {i}");
        }
    }

    /// Column-major panel of `k` deterministic pseudo-random columns.
    fn panel(n: usize, k: usize, seed: f64) -> Vec<f64> {
        (0..n * k)
            .map(|i| ((i as f64) * 0.731 + seed).sin())
            .collect()
    }

    #[test]
    fn spmm_columns_are_bitwise_equal_to_spmv() {
        for &n in &[1usize, 7, 33, 100] {
            let a = tridiag(n);
            for &k in &[1usize, 2, 3, 5, 8] {
                let xs = panel(n, k, 0.3);
                let mut ys = vec![0.0f64; n * k];
                let mut yp = vec![0.0f64; n * k];
                spmv_multi_seq(&a, &xs, &mut ys, k);
                spmv_multi_par(&a, &xs, &mut yp, k);
                assert_eq!(ys, yp, "n {n} k {k} seq/par");
                for c in 0..k {
                    let mut y1 = vec![0.0f64; n];
                    spmv_seq(&a, &xs[c * n..(c + 1) * n], &mut y1);
                    assert_eq!(&ys[c * n..(c + 1) * n], &y1[..], "n {n} k {k} col {c}");
                }
            }
        }
    }

    #[test]
    fn spmm_handles_empty_rows_and_mixed_precision() {
        // Rows alternating empty / 1-entry / dense, fp16 storage, f32 panel.
        let n = 24;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            match i % 3 {
                0 => {}
                1 => coo.push(i, i, 1.5),
                _ => {
                    for j in 0..12 {
                        coo.push(i, (i + j) % n, 0.25 * (j as f64 + 1.0));
                    }
                }
            }
        }
        let a: CsrMatrix<f16> = coo.to_csr().to_precision();
        let k = 3;
        let xs: Vec<f32> = (0..n * k).map(|i| ((i % 11) as f32 - 5.0) / 11.0).collect();
        let mut ys = vec![0.0f32; n * k];
        spmv_multi(&a, &xs, &mut ys, k);
        for c in 0..k {
            let mut y1 = vec![0.0f32; n];
            spmv_seq(&a, &xs[c * n..(c + 1) * n], &mut y1);
            for row in 0..n {
                assert_eq!(ys[c * n + row], y1[row], "col {c} row {row}");
                if row % 3 == 0 {
                    assert_eq!(ys[c * n + row], 0.0, "empty row {row}");
                }
            }
        }
    }

    #[test]
    fn scaled_spmm_columns_match_scaled_spmv() {
        let n = 200;
        let a = wide_range_tridiag(n);
        let s = ScaledCsr::<f16>::from_f64(&a);
        for &k in &[2usize, 5] {
            let xs = panel(n, k, 1.7);
            let mut ys = vec![0.0f64; n * k];
            let mut yp = vec![0.0f64; n * k];
            spmv_scaled_multi_seq(&s, &xs, &mut ys, k);
            spmv_scaled_multi_par(&s, &xs, &mut yp, k);
            assert_eq!(ys, yp, "k {k} seq/par");
            for c in 0..k {
                let mut y1 = vec![0.0f64; n];
                spmv_scaled_seq(&s, &xs[c * n..(c + 1) * n], &mut y1);
                assert_eq!(&ys[c * n..(c + 1) * n], &y1[..], "k {k} col {c}");
            }
        }
    }

    #[test]
    fn sell_spmm_columns_match_sell_spmv() {
        // Chunk 8 engages the 8-row group kernel where the backend allows;
        // chunk 4 forces the scalar per-row path; n = 70 leaves a partial
        // trailing group either way.
        let n = 70;
        let a = tridiag(n);
        for &chunk in &[4usize, 8] {
            let sell = SellMatrix::from_csr(&a, chunk);
            for &k in &[1usize, 3, 8] {
                let xs = panel(n, k, 0.9);
                let mut ys = vec![0.0f64; n * k];
                let mut yp = vec![0.0f64; n * k];
                spmv_sell_multi_seq(&sell, &xs, &mut ys, k);
                spmv_sell_multi_par(&sell, &xs, &mut yp, k);
                assert_eq!(ys, yp, "chunk {chunk} k {k} seq/par");
                for c in 0..k {
                    let mut y1 = vec![0.0f64; n];
                    spmv_sell_seq(&sell, &xs[c * n..(c + 1) * n], &mut y1);
                    assert_eq!(
                        &ys[c * n..(c + 1) * n],
                        &y1[..],
                        "chunk {chunk} k {k} col {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn scaled_sell_spmm_columns_match_scaled_sell_spmv() {
        let n = 120;
        let a = wide_range_tridiag(n);
        let sell = ScaledSell::<f16>::from_csr_f64(&a, 8);
        let k = 4;
        let xs = panel(n, k, 2.3);
        let mut ys = vec![0.0f64; n * k];
        let mut yp = vec![0.0f64; n * k];
        spmv_scaled_sell_multi_seq(&sell, &xs, &mut ys, k);
        spmv_scaled_sell_multi_par(&sell, &xs, &mut yp, k);
        assert_eq!(ys, yp, "seq/par");
        for c in 0..k {
            let mut y1 = vec![0.0f64; n];
            spmv_scaled_sell_seq(&sell, &xs[c * n..(c + 1) * n], &mut y1);
            assert_eq!(&ys[c * n..(c + 1) * n], &y1[..], "col {c}");
        }
    }

    #[test]
    fn spmm_parallel_dispatch_above_threshold() {
        let n = PAR_ROW_THRESHOLD / 2 + 77;
        let a = tridiag(n);
        let k = 3; // n * k crosses the work threshold even though n alone doesn't
        let xs = panel(n, k, 0.1);
        let mut ys = vec![0.0f64; n * k];
        let mut yd = vec![0.0f64; n * k];
        spmv_multi_seq(&a, &xs, &mut ys, k);
        spmv_multi(&a, &xs, &mut yd, k);
        assert_eq!(ys, yd);
    }

    #[test]
    fn spmm_empty_panel_is_a_no_op() {
        let a = tridiag(10);
        let xs: Vec<f64> = vec![];
        let mut ys: Vec<f64> = vec![];
        spmv_multi(&a, &xs, &mut ys, 0);
        let sell = SellMatrix::from_csr(&a, 8);
        spmv_sell_multi(&sell, &xs, &mut ys, 0);
    }

    #[test]
    #[should_panic(expected = "spmv_multi: xs length mismatch")]
    fn spmm_dimension_mismatch_panics() {
        let a = tridiag(4);
        let xs = vec![0.0f64; 7]; // not 4 * k for k = 2
        let mut ys = vec![0.0f64; 8];
        spmv_multi_seq(&a, &xs, &mut ys, 2);
    }
}
