//! Mixed-precision sparse matrix–vector products.
//!
//! The SpMV kernels are the dominant memory-bound kernels of every solver in
//! the paper.  They are generic over two precisions:
//!
//! * `TA` — the precision in which the matrix values are *stored*
//!   (fp64/fp32/fp16 depending on the nesting level, Table 1),
//! * `TV` — the precision of the input/output vectors.
//!
//! Arithmetic follows the paper's rule that "higher-precision instructions
//! are used when the inputs differ in precision": each row accumulates in
//! `TV::Accum` (fp32 when the vectors are fp16, otherwise the vector
//! precision itself), and matrix entries are widened into that type before
//! multiplying.
//!
//! Every kernel has a sequential and a rayon-parallel variant; the
//! un-suffixed entry points dispatch on problem size so small systems do not
//! pay the fork/join overhead.

use f3r_precision::Scalar;
use rayon::prelude::*;

use crate::csr::CsrMatrix;
use crate::sell::SellMatrix;

/// Row count above which the dispatching wrappers switch to rayon.
pub const PAR_ROW_THRESHOLD: usize = 1 << 14;

/// Minimum rows handled per rayon task, to bound scheduling overhead.
const MIN_ROWS_PER_TASK: usize = 1 << 10;

#[inline(always)]
fn spmv_row<TA: Scalar, TV: Scalar>(cols: &[u32], vals: &[TA], x: &[TV]) -> TV {
    let mut acc = <TV::Accum as Scalar>::zero();
    for (&c, &a) in cols.iter().zip(vals.iter()) {
        let xv = <TV::Accum as Scalar>::from_f64(x[c as usize].to_f64());
        let av = <TV::Accum as Scalar>::from_f64(a.to_f64());
        acc = av.mul_add(xv, acc);
    }
    TV::from_f64(acc.to_f64())
}

/// Sequential CSR SpMV: `y = A x`.
///
/// # Panics
/// Panics if the vector lengths do not match the matrix dimensions.
pub fn spmv_seq<TA: Scalar, TV: Scalar>(a: &CsrMatrix<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv: y length mismatch");
    for (row, yi) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row_entries(row);
        *yi = spmv_row(cols, vals, x);
    }
}

/// Rayon-parallel CSR SpMV: `y = A x` (row-wise parallelism).
pub fn spmv_par<TA: Scalar, TV: Scalar>(a: &CsrMatrix<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv: y length mismatch");
    y.par_iter_mut()
        .with_min_len(MIN_ROWS_PER_TASK)
        .enumerate()
        .for_each(|(row, yi)| {
            let (cols, vals) = a.row_entries(row);
            *yi = spmv_row(cols, vals, x);
        });
}

/// CSR SpMV dispatching between the sequential and parallel kernels based on
/// the number of rows.
pub fn spmv<TA: Scalar, TV: Scalar>(a: &CsrMatrix<TA>, x: &[TV], y: &mut [TV]) {
    if a.n_rows() >= PAR_ROW_THRESHOLD {
        spmv_par(a, x, y);
    } else {
        spmv_seq(a, x, y);
    }
}

/// Fused residual kernel: `r = b - A x`, accumulating in `TV::Accum`.
pub fn spmv_residual<TA: Scalar, TV: Scalar>(
    a: &CsrMatrix<TA>,
    x: &[TV],
    b: &[TV],
    r: &mut [TV],
) {
    assert_eq!(x.len(), a.n_cols(), "residual: x length mismatch");
    assert_eq!(b.len(), a.n_rows(), "residual: b length mismatch");
    assert_eq!(r.len(), a.n_rows(), "residual: r length mismatch");
    let body = |row: usize, ri: &mut TV| {
        let (cols, vals) = a.row_entries(row);
        let ax = spmv_row(cols, vals, x);
        let val = <TV::Accum as Scalar>::from_f64(b[row].to_f64())
            - <TV::Accum as Scalar>::from_f64(ax.to_f64());
        *ri = TV::from_f64(val.to_f64());
    };
    if a.n_rows() >= PAR_ROW_THRESHOLD {
        r.par_iter_mut()
            .with_min_len(MIN_ROWS_PER_TASK)
            .enumerate()
            .for_each(|(row, ri)| body(row, ri));
    } else {
        for (row, ri) in r.iter_mut().enumerate() {
            body(row, ri);
        }
    }
}

/// Sequential sliced-ELLPACK SpMV: `y = A x`.
///
/// This is the kernel used by the "GPU node" experiment configuration
/// (Section 5.2 uses sliced ELLPACK with a chunk size of 32).
pub fn spmv_sell_seq<TA: Scalar, TV: Scalar>(a: &SellMatrix<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "sell spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "sell spmv: y length mismatch");
    for (row, yi) in y.iter_mut().enumerate() {
        *yi = sell_row(a, row, x);
    }
}

/// Rayon-parallel sliced-ELLPACK SpMV.
pub fn spmv_sell_par<TA: Scalar, TV: Scalar>(a: &SellMatrix<TA>, x: &[TV], y: &mut [TV]) {
    assert_eq!(x.len(), a.n_cols(), "sell spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "sell spmv: y length mismatch");
    y.par_iter_mut()
        .with_min_len(MIN_ROWS_PER_TASK)
        .enumerate()
        .for_each(|(row, yi)| *yi = sell_row(a, row, x));
}

/// Sliced-ELLPACK SpMV dispatching on problem size.
pub fn spmv_sell<TA: Scalar, TV: Scalar>(a: &SellMatrix<TA>, x: &[TV], y: &mut [TV]) {
    if a.n_rows() >= PAR_ROW_THRESHOLD {
        spmv_sell_par(a, x, y);
    } else {
        spmv_sell_seq(a, x, y);
    }
}

#[inline(always)]
fn sell_row<TA: Scalar, TV: Scalar>(a: &SellMatrix<TA>, row: usize, x: &[TV]) -> TV {
    let mut acc = <TV::Accum as Scalar>::zero();
    for (c, v) in a.row_iter(row) {
        let xv = <TV::Accum as Scalar>::from_f64(x[c].to_f64());
        let av = <TV::Accum as Scalar>::from_f64(v.to_f64());
        acc = av.mul_add(xv, acc);
    }
    TV::from_f64(acc.to_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use half::f16;

    fn tridiag(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let a = tridiag(10);
        let x: Vec<f64> = (0..10).map(|i| (i as f64 + 1.0) * 0.1).collect();
        let mut y = vec![0.0; 10];
        spmv_seq(&a, &x, &mut y);
        for i in 0..10 {
            let mut expect = 2.0 * x[i];
            if i > 0 {
                expect -= x[i - 1];
            }
            if i + 1 < 10 {
                expect -= x[i + 1];
            }
            assert!((y[i] - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = tridiag(5000);
        let x: Vec<f64> = (0..5000).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; 5000];
        let mut y2 = vec![0.0; 5000];
        spmv_seq(&a, &x, &mut y1);
        spmv_par(&a, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn mixed_precision_fp16_matrix_fp32_vectors() {
        let a = tridiag(50);
        let a16: CsrMatrix<f16> = a.to_precision();
        let x: Vec<f32> = (0..50).map(|i| (i as f32 * 0.01).cos()).collect();
        let mut y64 = vec![0.0f64; 50];
        let x64: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
        spmv_seq(&a, &x64, &mut y64);
        let mut y = vec![0.0f32; 50];
        spmv_seq(&a16, &x, &mut y);
        for i in 0..50 {
            assert!(
                (f64::from(y[i]) - y64[i]).abs() < 1e-2,
                "row {i}: {} vs {}",
                y[i],
                y64[i]
            );
        }
    }

    #[test]
    fn pure_fp16_spmv_accumulates_in_fp32() {
        // With many same-sign terms an fp16 accumulation would visibly drift;
        // the f32 accumulation keeps the row sums near-exact for values that
        // are exactly representable in fp16.
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                coo.push(i, j, 1.0);
            }
        }
        let a: CsrMatrix<f16> = coo.to_csr().to_precision();
        let x = vec![f16::from_f32(1.0); n];
        let mut y = vec![f16::from_f32(0.0); n];
        spmv_seq(&a, &x, &mut y);
        for yi in &y {
            assert_eq!(yi.to_f64(), n as f64);
        }
    }

    #[test]
    fn residual_kernel_matches_separate_ops() {
        let a = tridiag(200);
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..200).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut ax = vec![0.0; 200];
        spmv_seq(&a, &x, &mut ax);
        let mut r = vec![0.0; 200];
        spmv_residual(&a, &x, &b, &mut r);
        for i in 0..200 {
            assert!((r[i] - (b[i] - ax[i])).abs() < 1e-14);
        }
    }

    #[test]
    fn sell_matches_csr() {
        let a = tridiag(1000);
        let sell = SellMatrix::from_csr(&a, 32);
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y1 = vec![0.0; 1000];
        let mut y2 = vec![0.0; 1000];
        let mut y3 = vec![0.0; 1000];
        spmv_seq(&a, &x, &mut y1);
        spmv_sell_seq(&sell, &x, &mut y2);
        spmv_sell_par(&sell, &x, &mut y3);
        for i in 0..1000 {
            assert!((y1[i] - y2[i]).abs() < 1e-13);
            assert!((y1[i] - y3[i]).abs() < 1e-13);
        }
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn dimension_mismatch_panics() {
        let a = tridiag(4);
        let x = vec![0.0f64; 3];
        let mut y = vec![0.0f64; 4];
        spmv_seq(&a, &x, &mut y);
    }
}
