//! Matrix statistics used to build the Table 2 style suite description.

use f3r_precision::Scalar;

use crate::csr::CsrMatrix;

/// Summary statistics of a test matrix, mirroring the columns of Table 2 in
/// the paper (`n`, `nnz`, `nnz/n`) plus a few structural measures used by the
/// experiment reports.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Matrix dimension `n`.
    pub n: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Average nonzeros per row.
    pub nnz_per_row: f64,
    /// Whether the matrix is numerically symmetric (tolerance `1e-12`).
    pub symmetric: bool,
    /// Largest absolute entry.
    pub max_abs: f64,
    /// Fraction of rows that are strictly diagonally dominant.
    pub diag_dominant_fraction: f64,
}

impl MatrixStats {
    /// Compute statistics for a matrix.
    #[must_use]
    pub fn compute<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        let n = a.n_rows();
        let mut dominant = 0usize;
        for row in 0..n {
            let (cols, vals) = a.row_entries(row);
            let mut diag = 0.0f64;
            let mut off = 0.0f64;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c as usize == row {
                    diag = v.to_f64().abs();
                } else {
                    off += v.to_f64().abs();
                }
            }
            if diag > off {
                dominant += 1;
            }
        }
        Self {
            n,
            nnz: a.nnz(),
            nnz_per_row: a.nnz_per_row(),
            symmetric: a.is_symmetric(1e-12),
            max_abs: a.max_abs(),
            diag_dominant_fraction: if n == 0 { 0.0 } else { dominant as f64 / n as f64 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::hpcg::hpcg_matrix;
    use crate::gen::hpgmp::hpgmp_matrix;

    #[test]
    fn hpcg_stats_match_paper_structure() {
        let a = hpcg_matrix(8, 8, 8);
        let s = MatrixStats::compute(&a);
        assert_eq!(s.n, 512);
        assert!(s.symmetric);
        // interior rows have 27 entries; nnz/n approaches 27 from below
        assert!(s.nnz_per_row > 15.0 && s.nnz_per_row < 27.0);
        assert_eq!(s.max_abs, 26.0);
        // 27-point stencil rows are weakly dominant (26 vs 26) except at the
        // boundary where they are strictly dominant.
        assert!(s.diag_dominant_fraction > 0.5);
    }

    #[test]
    fn hpgmp_is_nonsymmetric() {
        let a = hpgmp_matrix(6, 6, 6, 0.5);
        let s = MatrixStats::compute(&a);
        assert!(!s.symmetric);
        assert_eq!(s.n, 216);
    }
}
