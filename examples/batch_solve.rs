//! Measure how batched multi-RHS solving (`SolveSession::solve_batch`)
//! amortizes the dominant matrix-stream traffic across right-hand sides.
//!
//! The same HPCG-style system is solved with batch widths k = 1, 2, 4, 8.
//! Every outer and inner FGMRES iteration fuses the SpMVs of all
//! still-running systems into ONE pass over the matrix
//! (`ProblemMatrix::apply_multi`), so the counter-measured matrix bytes
//! *per right-hand side* fall roughly like 1/k — while each system still
//! computes bitwise the same iterates as its sequential solve.  The matrix
//! stream is the row-scaled fp16 variant, the configuration the paper's
//! traffic model rewards hardest.
//!
//! Run with:
//! ```text
//! cargo run --release --example batch_solve
//! ```

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{hpcg_matrix, random_rhs};
use f3r::sparse::scaling::jacobi_scale;

fn main() {
    // HPCG 16^3 (n = 4096), diagonally scaled as in the paper; two FGMRES
    // levels with the inner level streaming the scaled fp16 matrix.
    let a = jacobi_scale(&hpcg_matrix(16, 16, 16));
    let n = a.n_rows();
    let matrix = Arc::new(ProblemMatrix::from_csr(a));
    let prepared = SolverBuilder::new(matrix)
        .levels(vec![
            LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp16),
        ])
        .matrix_storage(MatrixStorage::Scaled(Precision::Fp16))
        .build();

    println!("solver: {}", prepared.spec().name);
    println!(
        "{:>6} {:>10} {:>12} {:>18} {:>18} {:>10}",
        "batch", "converged", "iters/RHS", "matrix [MiB]", "MiB per RHS", "vs k=1"
    );
    let mib = |b: f64| b / (1u64 << 20) as f64;
    let mut per_rhs_k1 = None;
    for k in [1usize, 2, 4, 8] {
        let bs: Vec<Vec<f64>> = (0..k as u64).map(|s| random_rhs(n, 77 + s)).collect();
        let mut xs = vec![Vec::new(); k];
        let results = prepared.session().solve_batch(&bs, &mut xs);
        // The whole batch shares one counter set, so any result's counters
        // carry the batch totals.
        let total = results[0].counters.matrix_bytes_total() as f64;
        let per_rhs = total / k as f64;
        let base = *per_rhs_k1.get_or_insert(per_rhs);
        let iters: usize = results.iter().map(|r| r.outer_iterations).sum();
        println!(
            "{:>6} {:>10} {:>12.1} {:>18.2} {:>18.2} {:>9.1}%",
            k,
            results.iter().all(|r| r.converged),
            iters as f64 / k as f64,
            mib(total),
            mib(per_rhs),
            100.0 * per_rhs / base,
        );
    }
}
