//! Study how the Krylov-basis *storage* precision affects convergence and
//! basis memory traffic — the storage/compute split of compressed-basis
//! GMRES applied to the nested solver stack.
//!
//! The same system is solved three times with identical working precisions;
//! only the storage precision of the inner Arnoldi/flexible bases changes
//! (f64 keeps each level's own working precision, f32/f16 compress).  The
//! basis traffic columns come from the `f3r_precision` counters, which
//! attribute basis reads/writes to the storage precision.
//!
//! Run with:
//! ```text
//! cargo run --release --example compressed_basis_study
//! ```

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{poisson2d_5pt, random_rhs};
use f3r::sparse::scaling::jacobi_scale;

fn main() {
    // The Figure-1 Laplacian scenario at a laptop-friendly size, with a
    // Jacobi primary preconditioner so the two-level solver does enough
    // outer iterations for the basis traffic to matter.
    let a = jacobi_scale(&poisson2d_5pt(64, 64));
    let n = a.n_rows();
    let b = random_rhs(n, 23);
    let matrix = Arc::new(ProblemMatrix::from_csr(a));

    let base_spec = |name: &str| NestedSpec {
        levels: vec![
            LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(20, Precision::Fp64, Precision::Fp64),
        ],
        precond: PrecondKind::Jacobi,
        precond_prec: Precision::Fp64,
        tol: 1e-8,
        max_outer_cycles: 10,
        name: name.to_string(),
    };

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>16} {:>16} {:>12}",
        "basis storage", "converged", "outer iters", "rel. res.", "basis [MiB]", "total [MiB]", "basis cut"
    );
    let mut baseline_basis = None;
    for storage in [Precision::Fp64, Precision::Fp32, Precision::Fp16] {
        let spec = base_spec(&format!("{}-basis", storage)).with_basis_storage(storage);
        let prepared = SolverBuilder::new(Arc::clone(&matrix)).spec(spec).build();
        let mut session = prepared.session();
        let mut x = vec![0.0; n];
        let r = session.solve(&b, &mut x);
        let basis_bytes = r.counters.basis_bytes_total();
        let base = *baseline_basis.get_or_insert(basis_bytes);
        let mib = |b: u64| b as f64 / (1u64 << 20) as f64;
        println!(
            "{:<14} {:>10} {:>12} {:>12.2e} {:>16.2} {:>16.2} {:>11.1}%",
            session.name(),
            r.converged,
            r.outer_iterations,
            r.final_relative_residual,
            mib(basis_bytes),
            mib(r.modeled_bytes()),
            100.0 * (1.0 - basis_bytes as f64 / base as f64),
        );
    }
    println!(
        "\nThe inner FGMRES(20) level re-reads its Arnoldi basis every iteration (the (5/2)m²\n\
         term of the paper's Section 4.1 model); storing those vectors in fp16 with one\n\
         amplitude scale per vector quarters that stream relative to fp64 vectors — at, as the\n\
         iteration column shows, no convergence cost.  The outermost basis stays at full\n\
         precision so the final accuracy is unaffected (see NestedSpec::with_basis_storage)."
    );
}
