//! Build a *custom* nested solver with the declarative `NestedSpec` API —
//! the same machinery behind the paper's F2/F3/F4 reference solvers
//! (Table 4) — and compare it against fp16-F3R.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_nesting
//! ```

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{convection_diffusion_3d, random_rhs};
use f3r::sparse::scaling::jacobi_scale;

fn main() {
    // A nonsymmetric convection-diffusion problem.
    let a = jacobi_scale(&convection_diffusion_3d(18, 18, 18, 1.0, 0.5, 2.0));
    let n = a.n_rows();
    let b = random_rhs(n, 99);
    let matrix = Arc::new(ProblemMatrix::from_csr(a));

    // A hand-rolled three-level solver: fp64 FGMRES(50) over an fp32
    // FGMRES(6) over an fp16 Richardson(3) with a fixed weight.
    let custom = NestedSpec {
        levels: vec![
            LevelSpec::fgmres(50, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(6, Precision::Fp32, Precision::Fp32),
            LevelSpec::Richardson {
                m: 3,
                matrix: MatrixStorage::Plain(Precision::Fp16),
                vector_prec: Precision::Fp16,
                weight: WeightStrategy::Adaptive { cycle: 32 },
            },
        ],
        precond: PrecondKind::BlockJacobiIlu0 { blocks: 8, alpha: 1.0 },
        precond_prec: Precision::Fp16,
        tol: 1e-8,
        max_outer_cycles: 3,
        name: "custom (F50, F6, R3, M)".to_string(),
    };

    let settings = SolverSettings {
        precond: PrecondKind::BlockJacobiIlu0 { blocks: 8, alpha: 1.0 },
        ..SolverSettings::default()
    };
    let reference = f3r_spec(F3rParams::default(), F3rScheme::Fp16, &settings);

    println!(
        "{:<26} {:>10} {:>12} {:>16} {:>12}",
        "solver", "converged", "time [s]", "M applications", "rel. res."
    );
    for spec in [reference, custom] {
        let tuple = spec.tuple_notation();
        let prepared = SolverBuilder::new(Arc::clone(&matrix)).spec(spec).build();
        let mut session = prepared.session();
        let mut x = vec![0.0; n];
        let r = session.solve(&b, &mut x);
        println!(
            "{:<26} {:>10} {:>12.3} {:>16} {:>12.2e}   {}",
            prepared.name(),
            r.converged,
            r.seconds,
            r.precond_applications,
            r.final_relative_residual,
            tuple
        );
    }
}
