//! Solve a system whose matrix is loaded from a Matrix Market file — the
//! path real SuiteSparse matrices (the paper's Table 2) take into this
//! library.  Without an argument the example writes a small demonstration
//! matrix to a temporary file first, so it always runs out of the box.
//!
//! Run with:
//! ```text
//! cargo run --release --example matrix_market_solve [-- /path/to/matrix.mtx]
//! ```

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{hpcg_matrix, random_rhs};
use f3r::sparse::io::{read_matrix_market_file, write_matrix_market};
use f3r::sparse::scaling::ScaledSystem;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        // No argument: write a demonstration matrix and use it.
        let path = std::env::temp_dir().join("f3r_demo_matrix.mtx");
        let file = std::fs::File::create(&path).expect("create demo matrix file");
        write_matrix_market(&hpcg_matrix(12, 12, 12), file).expect("write demo matrix");
        println!("no matrix given; wrote a demo HPCG matrix to {}", path.display());
        path.to_string_lossy().into_owned()
    });

    let a = read_matrix_market_file(&path).expect("read Matrix Market file");
    println!("loaded {}: n = {}, nnz = {}", path, a.n_rows(), a.nnz());

    // Diagonal scaling as in the paper, keeping the scaling so the solution
    // can be mapped back to the original variables.
    let scaled = ScaledSystem::new(&a);
    let n = scaled.matrix.n_rows();
    let symmetric = scaled.matrix.is_symmetric(1e-10);
    let b_original = random_rhs(n, 1234);
    let b = scaled.scale_rhs(&b_original);

    let precond = if symmetric {
        PrecondKind::BlockJacobiIc0 { blocks: 8, alpha: 1.0 }
    } else {
        PrecondKind::BlockJacobiIlu0 { blocks: 8, alpha: 1.0 }
    };
    let matrix = Arc::new(ProblemMatrix::from_csr(scaled.matrix.clone()));
    let prepared = SolverBuilder::new(matrix)
        .scheme(F3rScheme::Fp16)
        .precond(precond)
        .build();
    let mut session = prepared.session();

    let mut x_hat = vec![0.0; n];
    let result = session.solve(&b, &mut x_hat);
    let x = scaled.unscale_solution(&x_hat);

    println!("symmetric              : {symmetric}");
    println!("converged              : {}", result.converged);
    println!("true relative residual : {:.3e}", result.final_relative_residual);
    println!("M applications         : {}", result.precond_applications);
    println!("solution norm          : {:.6}", x.iter().map(|v| v * v).sum::<f64>().sqrt());
}
