//! Solve a system whose matrix is loaded from a Matrix Market file — the
//! path real SuiteSparse matrices (the paper's Table 2) take into this
//! library.  Without an argument the example writes a small demonstration
//! matrix to a temporary file first, so it always runs out of the box.
//!
//! The loader reports the entry dynamic-range statistics
//! ([`EntryRangeStats`]) of the raw and diagonally scaled matrix, and the
//! example picks the matrix storage automatically: when the scaled entries
//! still do not survive an unscaled fp16 copy, it switches the inner solver
//! levels to *row-scaled* fp16 matrix storage
//! (`MatrixStorage::Scaled(Precision::Fp16)`).
//!
//! Run with:
//! ```text
//! cargo run --release --example matrix_market_solve [-- /path/to/matrix.mtx]
//! ```

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{hpcg_matrix, random_rhs};
use f3r::sparse::io::{read_matrix_market_file_with_stats, write_matrix_market, EntryRangeStats};
use f3r::sparse::scaling::ScaledSystem;

fn print_stats(label: &str, stats: &EntryRangeStats) {
    println!(
        "{label}: |a| in [{:.3e}, {:.3e}], dynamic range {:.1e}, fp16 overflow {}, underflow {}, fp16-representable {}",
        stats.min_abs_nonzero,
        stats.max_abs,
        stats.dynamic_range,
        stats.fp16_overflow,
        stats.fp16_underflow,
        stats.fp16_representable(),
    );
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        // No argument: write a demonstration matrix and use it.
        let path = std::env::temp_dir().join("f3r_demo_matrix.mtx");
        let file = std::fs::File::create(&path).expect("create demo matrix file");
        write_matrix_market(&hpcg_matrix(12, 12, 12), file).expect("write demo matrix");
        println!("no matrix given; wrote a demo HPCG matrix to {}", path.display());
        path.to_string_lossy().into_owned()
    });

    let (a, raw_stats) =
        read_matrix_market_file_with_stats(&path).expect("read Matrix Market file");
    println!("loaded {}: n = {}, nnz = {}", path, a.n_rows(), a.nnz());
    print_stats("raw entries   ", &raw_stats);

    // Diagonal scaling as in the paper, keeping the scaling so the solution
    // can be mapped back to the original variables.
    let scaled = ScaledSystem::new(&a);
    let scaled_stats = EntryRangeStats::compute(&scaled.matrix);
    print_stats("after scaling ", &scaled_stats);

    // Storage recommendation: the fp16-F3R scheme streams fp16 matrix
    // variants on its inner levels.  If the diagonally scaled entries still
    // overflow/flush an unscaled fp16 copy, use row-scaled fp16 storage.
    let recommended = if scaled_stats.fp16_representable() {
        MatrixStorage::Plain(Precision::Fp16)
    } else {
        MatrixStorage::Scaled(Precision::Fp16)
    };
    println!("recommended inner matrix storage: {recommended}");

    let n = scaled.matrix.n_rows();
    let symmetric = scaled.matrix.is_symmetric(1e-10);
    let b_original = random_rhs(n, 1234);
    let b = scaled.scale_rhs(&b_original);

    let precond = if symmetric {
        PrecondKind::BlockJacobiIc0 { blocks: 8, alpha: 1.0 }
    } else {
        PrecondKind::BlockJacobiIlu0 { blocks: 8, alpha: 1.0 }
    };
    let matrix = Arc::new(ProblemMatrix::from_csr(scaled.matrix.clone()));
    let mut builder = SolverBuilder::new(Arc::clone(&matrix))
        .scheme(F3rScheme::Fp16)
        .precond(precond);
    if recommended.is_scaled() {
        builder = builder.matrix_storage(recommended);
    }
    let prepared = builder.build();
    let mut session = prepared.session();

    let mut x_hat = vec![0.0; n];
    let result = session.solve(&b, &mut x_hat);
    let x = scaled.unscale_solution(&x_hat);

    println!("symmetric              : {symmetric}");
    println!("converged              : {}", result.converged);
    println!("true relative residual : {:.3e}", result.final_relative_residual);
    println!("M applications         : {}", result.precond_applications);
    println!("solution norm          : {:.6}", x.iter().map(|v| v * v).sum::<f64>().sqrt());
    println!(
        "matrix-stream bytes    : fp16 {} / fp32 {} / fp64 {}",
        result.counters.matrix_bytes_in(Precision::Fp16),
        result.counters.matrix_bytes_in(Precision::Fp32),
        result.counters.matrix_bytes_in(Precision::Fp64),
    );
    println!(
        "materialized variants  : {:?}",
        matrix
            .materialized_variants()
            .iter()
            .map(|v| format!("{}/{} ({} B)", v.storage, v.format, v.bytes))
            .collect::<Vec<_>>()
    );
}
