//! Study how the precision scheme of F3R affects convergence, modeled
//! memory traffic and the fraction of work done in fp16 — the question at
//! the heart of the paper.
//!
//! Run with:
//! ```text
//! cargo run --release --example mixed_precision_study
//! ```

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{anisotropic_poisson_3d, random_rhs};
use f3r::sparse::scaling::jacobi_scale;

fn main() {
    // A mildly anisotropic 3-D diffusion problem (a thermal2-like analogue).
    let a = jacobi_scale(&anisotropic_poisson_3d(20, 20, 20, 1.0, 1.0, 1e-2));
    let n = a.n_rows();
    let b = random_rhs(n, 3);
    let matrix = Arc::new(ProblemMatrix::from_csr(a));

    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "scheme", "converged", "M applications", "traffic [MiB]", "% in fp16", "% in fp32", "% in fp64"
    );
    let mut baseline_bytes = None;
    for scheme in [F3rScheme::Fp64, F3rScheme::Fp32, F3rScheme::Fp16] {
        let prepared = SolverBuilder::new(Arc::clone(&matrix))
            .scheme(scheme)
            .precond(PrecondKind::BlockJacobiIc0 { blocks: 8, alpha: 1.0 })
            .build();
        let mut session = prepared.session();
        let mut x = vec![0.0; n];
        let r = session.solve(&b, &mut x);
        let bytes = r.modeled_bytes();
        baseline_bytes.get_or_insert(bytes);
        println!(
            "{:<10} {:>10} {:>14} {:>14.1} {:>11.1}% {:>11.1}% {:>11.1}%",
            prepared.name(),
            r.converged,
            r.precond_applications,
            bytes as f64 / (1u64 << 20) as f64,
            100.0 * r.counters.traffic_fraction(Precision::Fp16),
            100.0 * r.counters.traffic_fraction(Precision::Fp32),
            100.0 * r.counters.traffic_fraction(Precision::Fp64),
        );
    }
    if let Some(base) = baseline_bytes {
        println!(
            "\nThe fp16 scheme's modeled traffic advantage over fp64-F3R drives the paper's speedups\n\
             (Section 4.1); compare the traffic column above — fp64-F3R moves {:.1} MiB.",
            base as f64 / (1u64 << 20) as f64
        );
    }
}
