//! Quickstart: solve one HPCG-style system with fp16-F3R and print what the
//! solver did.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{hpcg_matrix, random_rhs};
use f3r::sparse::scaling::jacobi_scale;

fn main() {
    // 1. Build the problem: the HPCG 27-point stencil on a 24^3 grid,
    //    diagonally scaled, with a random right-hand side in [0, 1).
    let grid = 24;
    let a = jacobi_scale(&hpcg_matrix(grid, grid, grid));
    let n = a.n_rows();
    let b = random_rhs(n, 2025);
    println!("problem: HPCG {grid}x{grid}x{grid}  n = {n}, nnz = {}", a.nnz());

    // 2. Prepare fp16-F3R exactly as in Table 1 of the paper:
    //    (F100, F8, F4, R2, M) with IC(0) as the primary preconditioner.
    //    The builder runs all per-matrix setup (precision copies of A and
    //    the IC(0) factorisation) once; sessions share it immutably.
    let matrix = Arc::new(ProblemMatrix::from_csr(a));
    let prepared = SolverBuilder::new(matrix)
        .scheme(F3rScheme::Fp16)
        .precond(PrecondKind::Ic0 { alpha: 1.0 })
        .tol(1e-8)
        .max_outer_cycles(3)
        .build();
    println!("solver:  {} {}", prepared.name(), prepared.spec().tuple_notation());

    // 3. Solve in a session (reusable across right-hand sides).
    let mut session = prepared.session();
    let mut x = vec![0.0; n];
    let result = session.solve(&b, &mut x);

    // 4. Report.
    println!("summary                : {result}");
    println!("stopped because        : {}", result.stop_reason);
    println!("converged              : {}", result.converged);
    println!("true relative residual : {:.3e}", result.final_relative_residual);
    println!("outer iterations       : {}", result.outer_iterations);
    println!("M applications         : {}", result.precond_applications);
    println!("wall-clock seconds     : {:.3}", result.seconds);
    for prec in [Precision::Fp16, Precision::Fp32, Precision::Fp64] {
        println!(
            "traffic in {prec:>4}        : {:6.1}%  ({} MiB modeled)",
            100.0 * result.counters.traffic_fraction(prec),
            result.counters.bytes_in(prec) / (1 << 20)
        );
    }
}
