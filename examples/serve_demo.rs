//! Closed-loop demo of the serving layer (`f3r::serve`).
//!
//! Two problems — the 2-D Laplacian familiar from the Figure 1 runs and an
//! HPCG 16³ system — are served through one [`ServeHandle`]: a
//! fingerprint-keyed [`SolverRegistry`] prepares each solver exactly once,
//! warm [`SessionPool`](f3r::serve::SessionPool)s recycle solve workspaces
//! across requests, and a bounded queue admits the load.  Four client
//! threads run a closed loop (submit → wait → repeat) for 30 seconds
//! (override with `F3R_SERVE_DEMO_SECONDS`), then the aggregate metrics are
//! printed: request throughput, end-to-end p50/p99, registry hit rate and
//! per-pool warm rates.
//!
//! Run with:
//! ```text
//! cargo run --release --example serve_demo
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use f3r::prelude::*;
use f3r::serve::{RequestOptions, ServeConfig, ServeHandle, SolverRegistry};
use f3r::sparse::gen::{hpcg_matrix, poisson2d_5pt, random_rhs};
use f3r::sparse::scaling::jacobi_scale;

fn main() {
    let seconds: u64 = std::env::var("F3R_SERVE_DEMO_SECONDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    const CLIENTS: usize = 4;

    // The two served problems, both diagonally scaled as in the paper.
    let laplace = Arc::new(ProblemMatrix::from_csr(jacobi_scale(&poisson2d_5pt(64, 64))));
    let hpcg = Arc::new(ProblemMatrix::from_csr(jacobi_scale(&hpcg_matrix(16, 16, 16))));
    // FGMRES-only two-level spec: cheap per request, bitwise-stable under
    // warm session reuse.
    let spec = f2_spec(&SolverSettings::default());

    let registry = SolverRegistry::with_defaults();
    let serve = ServeHandle::start(Arc::clone(&registry), ServeConfig::default());

    println!(
        "serving laplace 64x64 (n = {}) and HPCG 16^3 (n = {}) for {seconds} s with {CLIENTS} closed-loop clients ...",
        laplace.dim(),
        hpcg.dim()
    );

    let deadline = Instant::now() + Duration::from_secs(seconds);
    let completed = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let serve = &serve;
            let registry = &registry;
            let spec = &spec;
            let laplace = &laplace;
            let hpcg = &hpcg;
            let completed = &completed;
            scope.spawn(move || {
                let mut seed = 1000 * (client as u64 + 1);
                while Instant::now() < deadline {
                    // 3:1 mix — the Laplacian is "hot", HPCG the long tail.
                    let matrix = if seed.is_multiple_of(4) { hpcg } else { laplace };
                    // The registry makes the per-request path cheap: after the
                    // first request per matrix this is a pure cache hit.
                    let solver = registry.get_or_prepare(matrix, spec).expect("valid spec");
                    let b = random_rhs(matrix.dim(), seed);
                    seed += 1;
                    let response = serve
                        .submit(&solver, b, RequestOptions::default())
                        .expect("blocking admission never rejects")
                        .wait();
                    assert!(response.results[0].converged, "{}", response.results[0]);
                    // ordering: statistics counter, no synchronization implied.
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let metrics = serve.metrics();
    serve.shutdown();

    let done = completed.load(Ordering::Relaxed);
    println!("\n--- front-end ---");
    println!("requests completed   {done}");
    println!("throughput           {:.1} req/s", done as f64 / elapsed);
    println!(
        "latency p50 / p99    {:.2} ms / {:.2} ms",
        metrics.p50_seconds.unwrap_or(0.0) * 1e3,
        metrics.p99_seconds.unwrap_or(0.0) * 1e3
    );

    let reg = metrics.registry;
    let lookups = reg.hits + reg.misses;
    println!("\n--- registry ---");
    println!("entries              {} ({:.2} MiB resident)", reg.entries, reg.resident_bytes as f64 / (1u64 << 20) as f64);
    println!(
        "hit rate             {:.3} ({} hits / {} lookups, {} builds, {} evictions)",
        reg.hits as f64 / lookups.max(1) as f64,
        reg.hits,
        lookups,
        reg.builds,
        reg.evictions
    );

    println!("\n--- session pools ---");
    for pool in &metrics.pools {
        let checkouts = pool.warm_checkouts + pool.cold_checkouts;
        println!(
            "{:>20} [{:08x}]  warm rate {:.3} ({} warm / {} checkouts), idle {} ({:.1} KiB workspaces)",
            pool.solver_name,
            pool.fingerprint >> 32,
            pool.warm_checkouts as f64 / checkouts.max(1) as f64,
            pool.warm_checkouts,
            checkouts,
            pool.idle,
            pool.idle_workspace_bytes as f64 / 1024.0
        );
    }

    let spmv: u64 = metrics.kernels.spmv_calls.iter().sum();
    println!("\n--- kernels (all requests) ---");
    println!(
        "SpMV calls           {spmv} [fp16 {}, fp32 {}, fp64 {}]",
        metrics.kernels.spmv_calls[0], metrics.kernels.spmv_calls[1], metrics.kernels.spmv_calls[2]
    );
    println!(
        "bytes moved          {:.1} MiB",
        metrics.kernels.total_bytes() as f64 / (1u64 << 20) as f64
    );
}
