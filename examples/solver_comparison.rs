//! Compare F3R against the conventional Krylov baselines of the paper
//! (CG, BiCGStab, restarted FGMRES(64)) on one symmetric and one
//! nonsymmetric problem — a miniature version of Figure 1.
//!
//! Run with:
//! ```text
//! cargo run --release --example solver_comparison
//! ```

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{hpcg_matrix, hpgmp_matrix, random_rhs};
use f3r::sparse::scaling::jacobi_scale;
use f3r::sparse::CsrMatrix;

fn run_all(label: &str, a: CsrMatrix<f64>, symmetric: bool) {
    let n = a.n_rows();
    let b = random_rhs(n, 11);
    let matrix = Arc::new(ProblemMatrix::from_csr(a));
    let precond = if symmetric {
        PrecondKind::BlockJacobiIc0 { blocks: 8, alpha: 1.0 }
    } else {
        PrecondKind::BlockJacobiIlu0 { blocks: 8, alpha: 1.0 }
    };
    let baseline_cfg = |prec| BaselineConfig {
        precond,
        precond_prec: prec,
        tol: 1e-8,
        max_iterations: 10_000,
    };

    println!("\n=== {label}  (n = {n}) ===");
    println!("{:<18} {:>9} {:>12} {:>14} {:>10}", "solver", "converged", "time [s]", "M applications", "rel. res.");

    let report = |name: String, result: SolveResult| {
        println!(
            "{:<18} {:>9} {:>12.3} {:>14} {:>10.2e}",
            name,
            result.converged,
            result.seconds,
            result.precond_applications,
            result.final_relative_residual
        );
    };

    for scheme in [F3rScheme::Fp64, F3rScheme::Fp32, F3rScheme::Fp16] {
        let prepared = SolverBuilder::new(Arc::clone(&matrix))
            .scheme(scheme)
            .precond(precond)
            .build();
        let mut s = prepared.session();
        let mut x = vec![0.0; n];
        let r = s.solve(&b, &mut x);
        report(s.name(), r);
    }

    if symmetric {
        let mut s = CgSolver::new(Arc::clone(&matrix), baseline_cfg(Precision::Fp64));
        let mut x = vec![0.0; n];
        let r = s.solve(&b, &mut x);
        report(s.name(), r);
    } else {
        let mut s = BiCgStabSolver::new(Arc::clone(&matrix), baseline_cfg(Precision::Fp64));
        let mut x = vec![0.0; n];
        let r = s.solve(&b, &mut x);
        report(s.name(), r);
    }

    let mut s = RestartedFgmresSolver::new(Arc::clone(&matrix), 64, baseline_cfg(Precision::Fp64));
    let mut x = vec![0.0; n];
    let r = s.solve(&b, &mut x);
    report(s.name(), r);
}

fn main() {
    run_all(
        "HPCG 20x20x20 (symmetric positive definite)",
        jacobi_scale(&hpcg_matrix(20, 20, 20)),
        true,
    );
    run_all(
        "HPGMP 20x20x20, beta = 0.5 (nonsymmetric)",
        jacobi_scale(&hpgmp_matrix(20, 20, 20, 0.5)),
        false,
    );
}
