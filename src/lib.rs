//! # f3r — a reproduction of *"A Nested Krylov Method Using Half-Precision
//! Arithmetic"* (Suzuki & Iwashita, 2025)
//!
//! This umbrella crate re-exports the whole workspace behind one dependency:
//!
//! * [`precision`] — fp64/fp32/fp16 scalar abstraction, conversions, the
//!   Section 4.1 memory-traffic model and instrumentation counters,
//! * [`sparse`] — CSR / sliced-ELLPACK storage, mixed-precision SpMV, BLAS-1
//!   kernels, HPCG/HPGMP and synthetic problem generators, Matrix Market I/O,
//! * [`precond`] — ILU(0), IC(0), block-Jacobi, Jacobi and SD-AINV-style
//!   preconditioners with mixed-precision storage,
//! * [`core`] — the F3R solver itself, the prepared-solver session API
//!   (`SolverBuilder` → `PreparedSolver` → `SolveSession`), the
//!   nested-solver framework, the adaptive-weight Richardson sweep
//!   (Algorithm 1), the CG / BiCGStab / FGMRES(64) baselines and the cost
//!   model,
//! * [`serve`] — the serving layer: a fingerprint-keyed registry of prepared
//!   solvers with single-flight construction and LRU/byte-cap eviction, warm
//!   session pools, and an admission-controlled request/response front-end
//!   with latency and hit-rate metrics.
//!
//! ## Quickstart
//!
//! Setup (precision copies of `A`, preconditioner factorisation, spec
//! validation) happens once in
//! [`SolverBuilder::build`](f3r_core::session::SolverBuilder::build); the resulting
//! `Arc<PreparedSolver>` hands out any number of solve sessions — share it
//! across threads for concurrent solves over one factorisation.
//!
//! ```
//! use std::sync::Arc;
//! use f3r::prelude::*;
//!
//! // Build a small HPCG-style SPD problem (27-point stencil), diagonally
//! // scaled as in the paper, and a random right-hand side in [0, 1).
//! let a = f3r::sparse::scaling::jacobi_scale(&f3r::sparse::gen::hpcg_matrix(8, 8, 8));
//! let n = a.n_rows();
//! let b = f3r::sparse::gen::random_rhs(n, 7);
//!
//! // Prepare fp16-F3R (the paper's default parameters) with IC(0) as M.
//! let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
//!     .scheme(F3rScheme::Fp16)
//!     .precond(f3r::precond::PrecondKind::Ic0 { alpha: 1.0 })
//!     .build();
//!
//! // Solve in a session; repeated solves reuse all workspaces.
//! let mut session = prepared.session();
//! let mut x = vec![0.0; n];
//! let result = session.solve(&b, &mut x);
//! assert!(result.converged && result.final_relative_residual < 1e-8);
//! println!("{result}"); // Display: one-line summary with the stop reason
//! ```

#![warn(missing_docs)]

pub use f3r_core as core;
pub use f3r_precision as precision;
pub use f3r_precond as precond;
pub use f3r_serve as serve;
pub use f3r_sparse as sparse;

/// One-stop re-exports for applications: solver presets, the nested-solver
/// framework, the baselines and the result types.
pub mod prelude {
    pub use f3r_core::prelude::*;
    pub use f3r_precision::{Precision, Scalar};
    pub use f3r_precond::{PrecondKind, Preconditioner};
    pub use f3r_sparse::{CooMatrix, CsrMatrix};
}

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired() {
        assert_eq!(crate::precision::Precision::Fp16.bytes(), 2);
        let i = crate::sparse::CsrMatrix::<f64>::identity(3);
        assert_eq!(i.nnz(), 3);
    }
}
