//! End-to-end adaptive runtime precision (issue 8).
//!
//! The scenarios pin the contract of `SolverBuilder::adaptive`:
//!
//! * a matrix whose ~1e16 entry dynamic range defeats scaled-fp16 matrix
//!   streaming must converge to 1e-8 *hands-off* — the stall detector
//!   escalates the inner levels mid-solve,
//! * a benign matrix must never escalate, and the adaptive run must be
//!   bitwise the fixed-spec run (and move fewer matrix bytes than a fixed
//!   Scaled(Fp32) configuration),
//! * after sustained progress at a wider rung the policy de-escalates and
//!   actually re-engages the fp16 stream, still converging,
//! * the escalated rung persists across solves of one session.

use std::sync::Arc;

use f3r::core::session::{PrecisionSwitchEvent, SolveOptions};
use f3r::prelude::*;
use f3r::sparse::gen::{poisson2d_5pt, random_rhs};
use f3r::sparse::scaling::jacobi_scale;
use f3r::sparse::CsrMatrix;

/// Diagonally scaled 2-D Laplacian re-scaled by `D A D` with
/// `D = diag(10^(-expo) .. 10^(expo))`: entry dynamic range ~`10^(4·expo)`.
/// `expo = 4` (~1e16) stalls Scaled(Fp16) streaming outright; `expo = 3.5`
/// merely slows it down (it still converges, just at a stall-grade rate).
fn wide_system(nx: usize, expo: f64) -> CsrMatrix<f64> {
    let a = jacobi_scale(&poisson2d_5pt(nx, nx));
    let n = a.n_rows();
    let d: Vec<f64> = (0..n)
        .map(|i| 10f64.powf(-expo + 2.0 * expo * i as f64 / (n - 1) as f64))
        .collect();
    a.scale_rows_cols(&d, &d)
}

fn two_level(inner: MatrixStorage) -> Vec<LevelSpec> {
    vec![
        LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
        LevelSpec::fgmres_stored(10, inner, Precision::Fp64),
    ]
}

#[derive(Default)]
struct SwitchLog(Vec<PrecisionSwitchEvent>);

impl SolveObserver for SwitchLog {
    fn on_precision_switch(&mut self, event: &PrecisionSwitchEvent) {
        self.0.push(event.clone());
    }
}

fn has_fp16_matrix(levels: &[LevelSpec]) -> bool {
    levels
        .iter()
        .any(|l| l.matrix_precision() == Precision::Fp16)
}

#[test]
fn stalled_scaled_fp16_escalates_and_converges_hands_off() {
    let pm = Arc::new(ProblemMatrix::from_csr(wide_system(24, 4.0)));
    let n = pm.dim();
    let b = random_rhs(n, 42);

    // Fixed Scaled(Fp16) stalls on this matrix: no convergence in the budget.
    let fixed = SolverBuilder::new(Arc::clone(&pm))
        .levels(two_level(MatrixStorage::Scaled(Precision::Fp16)))
        .precond(PrecondKind::Jacobi)
        .max_outer_cycles(10)
        .build();
    let r_fixed = fixed.session().solve(&b, &mut vec![0.0; n]);
    assert!(
        !r_fixed.converged,
        "expected the fixed Scaled(Fp16) spec to stall, got {r_fixed}"
    );

    // The same spec with the default adaptive policy converges hands-off.
    let adaptive = SolverBuilder::new(pm)
        .levels(two_level(MatrixStorage::Scaled(Precision::Fp16)))
        .precond(PrecondKind::Jacobi)
        .max_outer_cycles(10)
        .adaptive_default()
        .build();
    let mut session = adaptive.session();
    let mut x = vec![0.0; n];
    let mut log = SwitchLog::default();
    let r = session.solve_observed(&b, &mut x, &SolveOptions::new(), &mut log);

    assert!(r.converged, "adaptive solve should converge: {r}");
    assert!(r.final_relative_residual < 1e-8);
    assert!(r.counters.total_escalations() >= 1, "{:?}", r.counters);
    assert!(!log.0.is_empty());
    let first = &log.0[0];
    assert!(first.escalated);
    assert_eq!(first.from_rung, 0);
    assert_eq!(first.to_rung, 1);
    // The widened variants were materialized (bytes accounted) and streamed.
    assert!(r.counters.switch_bytes > 0);
    assert!(
        r.counters.matrix_bytes_in(Precision::Fp32) > 0
            || r.counters.matrix_bytes_in(Precision::Fp64) > 0
    );
    assert!(session.adaptive_rung().unwrap() >= 1);
}

#[test]
fn benign_matrix_never_escalates_and_undercuts_fixed_fp32_bytes() {
    let pm = Arc::new(ProblemMatrix::from_csr(jacobi_scale(&poisson2d_5pt(
        24, 24,
    ))));
    let n = pm.dim();
    let b = random_rhs(n, 7);

    let solve_fixed = |storage| {
        let prepared = SolverBuilder::new(Arc::clone(&pm))
            .levels(two_level(storage))
            .precond(PrecondKind::Jacobi)
            .build();
        let mut x = vec![0.0; n];
        let r = prepared.session().solve(&b, &mut x);
        assert!(r.converged, "{r}");
        (r, x)
    };
    let (r16, x16) = solve_fixed(MatrixStorage::Scaled(Precision::Fp16));
    let (r32, _) = solve_fixed(MatrixStorage::Scaled(Precision::Fp32));

    let adaptive = SolverBuilder::new(Arc::clone(&pm))
        .levels(two_level(MatrixStorage::Scaled(Precision::Fp16)))
        .precond(PrecondKind::Jacobi)
        .adaptive_default()
        .build();
    let mut session = adaptive.session();
    let mut x = vec![0.0; n];
    let mut log = SwitchLog::default();
    let r = session.solve_observed(&b, &mut x, &SolveOptions::new(), &mut log);

    assert!(r.converged, "{r}");
    // Never escalates on a benign matrix ...
    assert_eq!(r.counters.total_escalations(), 0);
    assert_eq!(r.counters.switch_bytes, 0);
    assert!(log.0.is_empty());
    assert_eq!(session.adaptive_rung(), Some(0));
    // ... and is bitwise the fixed fp16 run (parity well within the issue's
    // one-outer-iteration tolerance).
    assert_eq!(r.outer_iterations, r16.outer_iterations);
    assert_eq!(x, x16);
    // Acceptance criterion: adaptive-from-fp16 moves no more matrix bytes
    // than a fixed Scaled(Fp32) configuration on the benign suite.
    assert!(
        r.counters.matrix_bytes_total() <= r32.counters.matrix_bytes_total(),
        "adaptive {} bytes vs fixed fp32 {} bytes",
        r.counters.matrix_bytes_total(),
        r32.counters.matrix_bytes_total()
    );
}

#[test]
fn deescalation_reengages_fp16_and_still_converges() {
    // expo = 3.5: Scaled(Fp16) converges standalone but at a stall-grade
    // rate, so the detector escalates once; Scaled(Fp32) then makes healthy
    // progress and the (aggressive) policy hands the solve back to fp16,
    // which finishes the job.  max_escalations = 1 keeps the ladder pinned
    // to [Scaled(Fp16), Scaled(Fp32)] dynamics.
    let pm = Arc::new(ProblemMatrix::from_csr(wide_system(24, 3.5)));
    let n = pm.dim();
    let b = random_rhs(n, 42);

    let policy = AdaptivePolicy {
        max_escalations: 1,
        deescalate_after: Some(1),
        ..AdaptivePolicy::default()
    };
    let adaptive = SolverBuilder::new(pm)
        .levels(two_level(MatrixStorage::Scaled(Precision::Fp16)))
        .precond(PrecondKind::Jacobi)
        .max_outer_cycles(10)
        .adaptive(policy)
        .build();
    let mut session = adaptive.session();
    let mut x = vec![0.0; n];
    let mut log = SwitchLog::default();
    let r = session.solve_observed(&b, &mut x, &SolveOptions::new(), &mut log);

    assert!(r.converged, "{r}");
    assert_eq!(r.counters.total_escalations(), 1, "{:?}", log.0);
    assert!(r.counters.total_deescalations() >= 1, "{:?}", log.0);
    // The de-escalation switch re-engaged a half-precision matrix stream.
    let down = log
        .0
        .iter()
        .find(|ev| !ev.escalated)
        .expect("a de-escalation event");
    assert!(down.to_rung < down.from_rung);
    assert!(has_fp16_matrix(&down.levels));
    // And fp16 matrix traffic resumed after the switch back.
    assert!(r.counters.matrix_bytes_in(Precision::Fp16) > 0);
}

#[test]
fn escalated_rung_persists_across_solves_of_a_session() {
    let pm = Arc::new(ProblemMatrix::from_csr(wide_system(24, 4.0)));
    let n = pm.dim();
    let adaptive = SolverBuilder::new(pm)
        .levels(two_level(MatrixStorage::Scaled(Precision::Fp16)))
        .precond(PrecondKind::Jacobi)
        .max_outer_cycles(10)
        .adaptive_default()
        .build();
    let mut session = adaptive.session();

    let b1 = random_rhs(n, 1);
    let mut x = vec![0.0; n];
    let r1 = session.solve(&b1, &mut x);
    assert!(r1.converged, "{r1}");
    let rung = session.adaptive_rung().unwrap();
    assert!(rung >= 1);
    let first_escalations = r1.counters.total_escalations();
    assert!(first_escalations >= 1);

    // A second solve starts at the already-escalated rung: it converges
    // without re-walking the rungs the first solve already climbed.
    let b2 = random_rhs(n, 2);
    let mut x2 = vec![0.0; n];
    let r2 = session.solve(&b2, &mut x2);
    assert!(r2.converged, "{r2}");
    assert!(
        r2.counters.total_escalations() < first_escalations
            || r2.counters.total_escalations() == 0,
        "second solve escalated {} times vs {} on the first",
        r2.counters.total_escalations(),
        first_escalations
    );
}
