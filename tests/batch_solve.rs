//! Integration tests for batched multi-RHS solving
//! (`SolveSession::solve_batch`) through the public `f3r` umbrella crate.
//!
//! The batched path runs `k` *independent* FGMRES recurrences whose SpMVs
//! fuse into one matrix pass per iteration.  For FGMRES-only nesting chains
//! every column computes the exact floating-point sequence of its
//! sequential solve, so the parity tests assert **bitwise** equality of
//! solutions, iteration counts and residual histories — on the Figure 1
//! Laplacian and the HPCG problem, across fp32 and fp16 inner working/
//! storage precisions.  Adaptive Richardson levels share weight state
//! across the batch (application order differs), so the F3R preset test
//! asserts convergence to the same tolerance instead of bitwise equality.

use std::sync::Arc;

use f3r::precond::PrecondKind;
use f3r::prelude::*;
use f3r::sparse::gen::{hpcg_matrix, poisson2d_5pt, random_rhs};
use f3r::sparse::scaling::jacobi_scale;
use f3r::sparse::CsrMatrix;

/// Assert that `solve_batch` on `prepared` reproduces `k` fresh sequential
/// sessions bit for bit: solutions, stop reasons, iteration counts and
/// per-cycle true-residual histories.
fn assert_batch_matches_sequential(prepared: &Arc<PreparedSolver>, k: usize, seed: u64) {
    let n = prepared.dim();
    let bs: Vec<Vec<f64>> = (0..k as u64).map(|s| random_rhs(n, seed + s)).collect();
    let mut xs = vec![Vec::new(); k];
    let results = prepared.session().solve_batch(&bs, &mut xs);
    assert_eq!(results.len(), k);
    for c in 0..k {
        let mut x_ref = vec![0.0; n];
        let r_ref = prepared.session().solve(&bs[c], &mut x_ref);
        assert!(results[c].converged, "col {c}: {}", results[c]);
        assert_eq!(results[c].stop_reason, r_ref.stop_reason, "col {c}");
        assert_eq!(results[c].outer_iterations, r_ref.outer_iterations, "col {c}");
        assert_eq!(results[c].residual_history, r_ref.residual_history, "col {c}");
        assert_eq!(xs[c], x_ref, "col {c}: batched solution diverged bitwise");
    }
}

fn laplacian_prepared(inner: LevelSpec, storage: Option<MatrixStorage>) -> Arc<PreparedSolver> {
    let a = jacobi_scale(&poisson2d_5pt(24, 24));
    build_two_level(a, inner, storage)
}

fn hpcg_prepared(inner: LevelSpec, storage: Option<MatrixStorage>) -> Arc<PreparedSolver> {
    let a = jacobi_scale(&hpcg_matrix(16, 16, 16));
    build_two_level(a, inner, storage)
}

fn build_two_level(
    a: CsrMatrix<f64>,
    inner: LevelSpec,
    storage: Option<MatrixStorage>,
) -> Arc<PreparedSolver> {
    let mut builder = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
        .levels(vec![LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64), inner]);
    if let Some(s) = storage {
        builder = builder.matrix_storage(s);
    }
    builder.build()
}

#[test]
fn batch_matches_sequential_on_laplacian_fp32_inner() {
    let prepared = laplacian_prepared(LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp32), None);
    assert_batch_matches_sequential(&prepared, 3, 500);
}

#[test]
fn batch_matches_sequential_on_laplacian_fp16_storage() {
    // fp16 inner axis: fp16-compressed Krylov basis on the inner level plus
    // the row-scaled fp16 matrix stream — the configuration whose traffic
    // the batching amortizes hardest.
    let prepared = laplacian_prepared(
        LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp16),
        Some(MatrixStorage::Scaled(Precision::Fp16)),
    );
    assert_batch_matches_sequential(&prepared, 4, 600);
}

#[test]
fn batch_matches_sequential_on_hpcg_fp32_inner() {
    let prepared = hpcg_prepared(LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp32), None);
    assert_batch_matches_sequential(&prepared, 2, 700);
}

#[test]
fn batch_matches_sequential_on_hpcg_fp16_storage() {
    let prepared = hpcg_prepared(
        LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp16),
        Some(MatrixStorage::Scaled(Precision::Fp16)),
    );
    assert_batch_matches_sequential(&prepared, 3, 800);
}

#[test]
fn batch_amortizes_the_matrix_stream_across_columns() {
    // The acceptance claim behind `benches/solver_batch.rs`: on HPCG with
    // the scaled-fp16 inner stream, the counter-measured matrix bytes per
    // right-hand side at k = 8 must be at most a quarter of the k = 1 cost
    // (ideal amortization would be 1/8).
    let prepared = hpcg_prepared(
        LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp16),
        Some(MatrixStorage::Scaled(Precision::Fp16)),
    );
    let n = prepared.dim();
    let b1 = vec![random_rhs(n, 900)];
    let mut x1 = vec![Vec::new()];
    let r1 = prepared.session().solve_batch(&b1, &mut x1);
    let bytes_single = r1[0].counters.matrix_bytes_total();

    let k = 8;
    let bs: Vec<Vec<f64>> = (0..k as u64).map(|s| random_rhs(n, 900 + s)).collect();
    let mut xs = vec![Vec::new(); k];
    let rk = prepared.session().solve_batch(&bs, &mut xs);
    assert!(rk.iter().all(|r| r.converged));
    let bytes_per_rhs = rk[0].counters.matrix_bytes_total() as f64 / k as f64;
    assert!(
        bytes_per_rhs <= 0.25 * bytes_single as f64,
        "matrix bytes/RHS at k=8: {bytes_per_rhs:.0} vs single {bytes_single} (want <= 25%)"
    );
}

#[test]
fn batch_with_richardson_innermost_converges_to_the_same_tolerance() {
    // The full fp16-F3R preset ends in an adaptive-weight Richardson sweep
    // whose weight state is shared across the batch, so bitwise parity is
    // out of contract — but every column must still converge to the spec
    // tolerance, and the solutions must agree with sequential runs to the
    // accuracy both paths guarantee.
    let a = jacobi_scale(&hpcg_matrix(8, 8, 8));
    let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
        .scheme(F3rScheme::Fp16)
        .precond(PrecondKind::Ic0 { alpha: 1.0 })
        .build();
    let n = prepared.dim();
    let tol = prepared.spec().tol;
    let k = 3;
    let bs: Vec<Vec<f64>> = (0..k as u64).map(|s| random_rhs(n, 40 + s)).collect();
    let mut xs = vec![Vec::new(); k];
    let results = prepared.session().solve_batch(&bs, &mut xs);
    for c in 0..k {
        assert!(results[c].converged, "col {c}: {}", results[c]);
        let rel = prepared.matrix().true_relative_residual(&xs[c], &bs[c]);
        assert!(rel < tol, "col {c}: true residual {rel} vs tol {tol}");
    }
}

#[test]
fn mixed_convergence_deflates_finished_columns() {
    // Short outer cycles + a generous cycle budget so columns of different
    // difficulty finish after different numbers of shared cycles.  Deflation
    // must not perturb the surviving columns: each still matches its
    // sequential solve bitwise.
    let a = jacobi_scale(&poisson2d_5pt(24, 24));
    let n = a.n_rows();
    // A zero column (deflated before the first cycle), an easy column (the
    // image of a coordinate vector) and two generic random columns.
    let mut e = vec![0.0; n];
    e[n / 2] = 1.0;
    let mut easy = vec![0.0; n];
    f3r::sparse::spmv::spmv_seq(&a, &e, &mut easy);
    let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
        .levels(vec![
            LevelSpec::fgmres(5, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(4, Precision::Fp32, Precision::Fp32),
        ])
        .max_outer_cycles(60)
        .build();
    let bs = vec![random_rhs(n, 1), vec![0.0; n], easy, random_rhs(n, 2)];
    let mut xs = vec![Vec::new(); 4];
    let results = prepared.session().solve_batch(&bs, &mut xs);
    assert!(results.iter().all(|r| r.converged), "{results:?}");
    assert_eq!(results[1].outer_iterations, 0);
    let cycle_counts: Vec<usize> =
        results.iter().map(|r| r.residual_history.len()).collect();
    assert!(
        cycle_counts.iter().any(|&c| c != cycle_counts[0]),
        "expected mixed convergence, got {cycle_counts:?}"
    );
    for c in [0usize, 2, 3] {
        let mut x_ref = vec![0.0; n];
        let r_ref = prepared.session().solve(&bs[c], &mut x_ref);
        assert_eq!(results[c].outer_iterations, r_ref.outer_iterations, "col {c}");
        assert_eq!(xs[c], x_ref, "col {c}: deflation perturbed a survivor");
    }
}

#[test]
fn solve_many_and_solve_batch_share_the_mismatch_contract() {
    // Both entry points document the same panic; pin the messages so they
    // stay consistent.
    let prepared = laplacian_prepared(LevelSpec::fgmres(5, Precision::Fp64, Precision::Fp64), None);
    let bs = vec![vec![0.0; prepared.dim()]; 2];
    for batch in [false, true] {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut xs = vec![Vec::new(); 3];
            let mut session = prepared.session();
            if batch {
                session.solve_batch(&bs, &mut xs)
            } else {
                session.solve_many(&bs, &mut xs)
            }
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("need one solution vector per right-hand side"),
            "unexpected panic message: {msg}"
        );
    }
}
