//! End-to-end acceptance tests for compressed Krylov-basis storage: on the
//! Figure-1 Laplacian and HPCG scenarios, a nested FGMRES whose inner bases
//! are stored in fp16 must converge with an outer iteration count within 10%
//! of full-precision storage while the traffic counters report at least a
//! 40% reduction in basis bytes moved.

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{hpcg_matrix, poisson2d_5pt, random_rhs};
use f3r::sparse::scaling::jacobi_scale;
use f3r::sparse::CsrMatrix;

/// Two-level nested FGMRES `(F30, F20, M)` with a Jacobi primary
/// preconditioner: the inner 20-iteration level dominates the basis traffic
/// (the `(5/2)m²` Gram–Schmidt term), which is the regime compressed basis
/// storage targets.
fn two_level_spec(name: &str) -> NestedSpec {
    NestedSpec {
        levels: vec![
            LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(20, Precision::Fp32, Precision::Fp32),
        ],
        precond: PrecondKind::Jacobi,
        precond_prec: Precision::Fp64,
        tol: 1e-8,
        max_outer_cycles: 10,
        name: name.to_string(),
    }
}

struct StorageComparison {
    iters_full: usize,
    iters_fp16: usize,
    basis_bytes_full: u64,
    basis_bytes_fp16: u64,
}

fn compare_storage(a: CsrMatrix<f64>, seed: u64) -> StorageComparison {
    let pm = Arc::new(ProblemMatrix::from_csr(a));
    let n = pm.dim();
    let b = random_rhs(n, seed);
    let run = |spec: NestedSpec| {
        let name = spec.name.clone();
        let mut solver = SolverBuilder::new(Arc::clone(&pm)).spec(spec).build().session();
        let mut x = vec![0.0; n];
        let r = solver.solve(&b, &mut x);
        assert!(
            r.converged,
            "{name}: did not converge, residual {}",
            r.final_relative_residual
        );
        assert!(r.final_relative_residual < 1e-8, "{name}");
        (r.outer_iterations, r.counters.basis_bytes_total())
    };
    let (iters_full, basis_bytes_full) = run(two_level_spec("full-storage"));
    let (iters_fp16, basis_bytes_fp16) =
        run(two_level_spec("fp16-basis").with_basis_storage(Precision::Fp16));
    StorageComparison {
        iters_full,
        iters_fp16,
        basis_bytes_full,
        basis_bytes_fp16,
    }
}

fn assert_acceptance(c: &StorageComparison, scenario: &str) {
    // Outer iteration count within 10% of full-precision storage (never
    // below a one-iteration slack for very fast solves).
    let margin = ((c.iters_full as f64 * 0.10).ceil() as usize).max(1);
    assert!(
        c.iters_fp16 <= c.iters_full + margin,
        "{scenario}: fp16-basis outer iterations {} vs full-storage {}",
        c.iters_fp16,
        c.iters_full
    );
    // At least a 40% reduction in basis bytes moved.
    assert!(
        (c.basis_bytes_fp16 as f64) <= 0.60 * c.basis_bytes_full as f64,
        "{scenario}: basis bytes {} vs {} ({}% of full)",
        c.basis_bytes_fp16,
        c.basis_bytes_full,
        100 * c.basis_bytes_fp16 / c.basis_bytes_full.max(1)
    );
}

#[test]
fn fp16_basis_storage_on_fig1_laplacian() {
    let c = compare_storage(jacobi_scale(&poisson2d_5pt(48, 48)), 23);
    assert_acceptance(&c, "fig-1 Laplacian");
}

#[test]
fn fp16_basis_storage_on_hpcg() {
    let c = compare_storage(jacobi_scale(&hpcg_matrix(16, 16, 16)), 23);
    assert_acceptance(&c, "HPCG");
}

#[test]
fn fp16_basis_storage_composes_with_f3r_preset() {
    // The storage axis must also bolt onto the paper's fp16-F3R preset: the
    // solver still converges to 1e-8 and some basis traffic moves in fp16.
    let a = jacobi_scale(&hpcg_matrix(8, 8, 8));
    let pm = Arc::new(ProblemMatrix::from_csr(a));
    let n = pm.dim();
    let b = random_rhs(n, 3);
    let settings = SolverSettings {
        precond: PrecondKind::Ic0 { alpha: 1.0 },
        ..SolverSettings::default()
    };
    let spec = f3r_spec(F3rParams::default(), F3rScheme::Fp16, &settings)
        .with_basis_storage(Precision::Fp16);
    let mut solver = SolverBuilder::new(pm).spec(spec).build().session();
    let mut x = vec![0.0; n];
    let r = solver.solve(&b, &mut x);
    assert!(r.converged, "residual {}", r.final_relative_residual);
    assert!(r.counters.basis_bytes_in(Precision::Fp16) > 0);
}
