//! Cross-crate integration tests: full solves through the public `f3r` API.

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{
    convection_diffusion_3d, elasticity_like_3d, hpcg_matrix, hpgmp_matrix, random_rhs,
};
use f3r::sparse::scaling::jacobi_scale;
use f3r::sparse::spmv::spmv_seq;
use f3r::sparse::CsrMatrix;

fn solve_with_scheme(a: &CsrMatrix<f64>, symmetric: bool, scheme: F3rScheme) -> (SolveResult, Vec<f64>, Vec<f64>) {
    let n = a.n_rows();
    let b = random_rhs(n, 7);
    let precond = if symmetric {
        PrecondKind::BlockJacobiIc0 { blocks: 4, alpha: 1.0 }
    } else {
        PrecondKind::BlockJacobiIlu0 { blocks: 4, alpha: 1.0 }
    };
    let matrix = Arc::new(ProblemMatrix::from_csr(a.clone()));
    let mut session = SolverBuilder::new(matrix)
        .scheme(scheme)
        .precond(precond)
        .build()
        .session();
    let mut x = vec![0.0; n];
    let r = session.solve(&b, &mut x);
    (r, x, b)
}

#[test]
fn all_three_f3r_schemes_converge_on_hpcg() {
    let a = jacobi_scale(&hpcg_matrix(10, 10, 10));
    for scheme in [F3rScheme::Fp64, F3rScheme::Fp32, F3rScheme::Fp16] {
        let (r, x, b) = solve_with_scheme(&a, true, scheme);
        assert!(r.converged, "{scheme:?} failed: {}", r.final_relative_residual);
        // verify the returned solution against the matrix directly
        let mut ax = vec![0.0; x.len()];
        spmv_seq(&a, &x, &mut ax);
        let num: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(num / den < 1e-8, "{scheme:?} true residual {}", num / den);
    }
}

#[test]
fn all_three_f3r_schemes_converge_on_nonsymmetric_hpgmp() {
    let a = jacobi_scale(&hpgmp_matrix(10, 10, 10, 0.5));
    for scheme in [F3rScheme::Fp64, F3rScheme::Fp32, F3rScheme::Fp16] {
        let (r, _, _) = solve_with_scheme(&a, false, scheme);
        assert!(r.converged, "{scheme:?} failed: {}", r.final_relative_residual);
    }
}

#[test]
fn fp16_f3r_handles_strong_convection() {
    let a = jacobi_scale(&convection_diffusion_3d(12, 12, 12, 2.0, 1.0, 3.0));
    let (r, _, _) = solve_with_scheme(&a, false, F3rScheme::Fp16);
    assert!(r.converged, "residual {}", r.final_relative_residual);
}

#[test]
fn fp16_f3r_handles_heavy_elasticity_like_problem() {
    let a = jacobi_scale(&elasticity_like_3d(5, 5, 5, 0.3));
    let (r, _, _) = solve_with_scheme(&a, true, F3rScheme::Fp16);
    assert!(r.converged, "residual {}", r.final_relative_residual);
}

#[test]
fn gpu_node_configuration_sd_ainv_plus_sell() {
    // The Figure 2 configuration: SD-AINV preconditioner + sliced ELLPACK.
    let a = jacobi_scale(&hpcg_matrix(10, 10, 10));
    let n = a.n_rows();
    let b = random_rhs(n, 5);
    let matrix = Arc::new(ProblemMatrix::new(a, SpmvBackend::Sell { chunk: 32 }));
    let mut solver = SolverBuilder::new(matrix)
        .scheme(F3rScheme::Fp16)
        .precond(PrecondKind::SdAinv { alpha: 1.0, order: 2 })
        .build()
        .session();
    let mut x = vec![0.0; n];
    let r = solver.solve(&b, &mut x);
    assert!(r.converged, "residual {}", r.final_relative_residual);
}

#[test]
fn nesting_variants_of_table4_converge() {
    let a = jacobi_scale(&hpcg_matrix(8, 8, 8));
    let n = a.n_rows();
    let b = random_rhs(n, 13);
    let matrix = Arc::new(ProblemMatrix::from_csr(a));
    let settings = SolverSettings {
        precond: PrecondKind::BlockJacobiIc0 { blocks: 4, alpha: 1.0 },
        ..SolverSettings::default()
    };
    for spec in [
        f2_spec(&settings),
        fp16_f2_spec(&settings),
        f3_spec(&settings),
        fp16_f3_spec(&settings),
        f4_spec(&settings),
    ] {
        let name = spec.name.clone();
        let mut solver = SolverBuilder::new(Arc::clone(&matrix)).spec(spec).build().session();
        let mut x = vec![0.0; n];
        let r = solver.solve(&b, &mut x);
        assert!(r.converged, "{name} failed: {}", r.final_relative_residual);
    }
}

#[test]
fn baselines_and_f3r_agree_on_the_solution() {
    let a = jacobi_scale(&hpcg_matrix(8, 8, 8));
    let n = a.n_rows();
    let b = random_rhs(n, 3);
    let matrix = Arc::new(ProblemMatrix::from_csr(a));
    let precond = PrecondKind::BlockJacobiIc0 { blocks: 4, alpha: 1.0 };
    let settings = SolverSettings {
        precond,
        ..SolverSettings::default()
    };

    let mut x_f3r = vec![0.0; n];
    let mut f3r = SolverBuilder::new(Arc::clone(&matrix))
        .spec(f3r_spec(F3rParams::default(), F3rScheme::Fp16, &settings))
        .build()
        .session();
    assert!(f3r.solve(&b, &mut x_f3r).converged);

    let mut x_cg = vec![0.0; n];
    let mut cg = CgSolver::new(
        Arc::clone(&matrix),
        BaselineConfig {
            precond,
            ..BaselineConfig::default()
        },
    );
    assert!(cg.solve(&b, &mut x_cg).converged);

    // Both converged to tolerance 1e-8 on a well-conditioned system, so the
    // solutions must agree to a few orders of magnitude above that.
    let diff: f64 = x_f3r.iter().zip(&x_cg).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    let norm: f64 = x_cg.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(diff / norm < 1e-6, "solutions diverge: {}", diff / norm);
}

#[test]
fn solver_is_reusable_across_right_hand_sides() {
    let a = jacobi_scale(&hpcg_matrix(8, 8, 8));
    let n = a.n_rows();
    let matrix = Arc::new(ProblemMatrix::from_csr(a));
    let mut solver = SolverBuilder::new(matrix)
        .scheme(F3rScheme::Fp16)
        .precond(PrecondKind::BlockJacobiIc0 { blocks: 4, alpha: 1.0 })
        .build()
        .session();
    for seed in 0..3 {
        let b = random_rhs(n, seed);
        let mut x = vec![0.0; n];
        let r = solver.solve(&b, &mut x);
        assert!(r.converged, "seed {seed}: {}", r.final_relative_residual);
    }
}
