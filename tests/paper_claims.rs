//! Integration tests pinning the qualitative claims of the paper that the
//! reproduction is expected to preserve (the "shape" of the evaluation).

use std::sync::Arc;

use f3r::core::cost_model::{best_split, RowCosts};
use f3r::prelude::*;
use f3r::sparse::gen::{hpcg_matrix, hpgmp_matrix, random_rhs};
use f3r::sparse::scaling::jacobi_scale;

fn f3r_result(a: &f3r::sparse::CsrMatrix<f64>, symmetric: bool, scheme: F3rScheme) -> SolveResult {
    let n = a.n_rows();
    let b = random_rhs(n, 77);
    let precond = if symmetric {
        PrecondKind::BlockJacobiIc0 { blocks: 4, alpha: 1.0 }
    } else {
        PrecondKind::BlockJacobiIlu0 { blocks: 4, alpha: 1.0 }
    };
    let matrix = Arc::new(ProblemMatrix::from_csr(a.clone()));
    let mut session = SolverBuilder::new(matrix)
        .scheme(scheme)
        .precond(precond)
        .build()
        .session();
    let mut x = vec![0.0; n];
    session.solve(&b, &mut x)
}

/// Section 5.1 / Table 3: "there is no significant difference in the
/// convergence rate, regardless of the use of lower-precision arithmetic in
/// F3R" (the worst observed increase is ~9%).
///
/// F3R's preconditioner count is quantised to `m2·m3·m4 = 64` per outermost
/// iteration, so on laptop-scale problems the comparison allows either a
/// small relative increase or at most one extra outermost iteration.
#[test]
fn reduced_precision_does_not_degrade_convergence() {
    let a = jacobi_scale(&hpcg_matrix(12, 12, 12));
    let r64 = f3r_result(&a, true, F3rScheme::Fp64);
    let r32 = f3r_result(&a, true, F3rScheme::Fp32);
    let r16 = f3r_result(&a, true, F3rScheme::Fp16);
    assert!(r64.converged && r32.converged && r16.converged);
    let c64 = r64.precond_applications;
    for (name, r) in [("fp32", &r32), ("fp16", &r16)] {
        let c = r.precond_applications;
        let ratio = c as f64 / c64 as f64;
        let extra_outer = c.saturating_sub(c64) <= 64;
        assert!(
            ratio < 1.15 || extra_outer,
            "{name}-F3R needed {ratio:.2}x the preconditioning steps of fp64-F3R ({c} vs {c64})"
        );
    }
}

/// Section 4 / Figure 1: the benefit of fp16 comes from reduced data
/// movement; the fp16 scheme must move substantially fewer modeled bytes
/// than the fp64 scheme, with fp32 in between.
#[test]
fn traffic_ordering_fp16_lt_fp32_lt_fp64() {
    let a = jacobi_scale(&hpcg_matrix(10, 10, 10));
    let b64 = f3r_result(&a, true, F3rScheme::Fp64).modeled_bytes() as f64;
    let b32 = f3r_result(&a, true, F3rScheme::Fp32).modeled_bytes() as f64;
    let b16 = f3r_result(&a, true, F3rScheme::Fp16).modeled_bytes() as f64;
    assert!(b16 < b32 && b32 < b64, "traffic not ordered: {b16} {b32} {b64}");
    assert!(
        b64 / b16 > 1.4,
        "fp16-F3R should reduce modeled traffic by well over 1.4x, got {:.2}",
        b64 / b16
    );
}

/// Section 5.1: most of fp16-F3R's data movement happens in low precision —
/// the whole point of pushing fp16 into the inner solvers.
#[test]
fn majority_of_fp16_f3r_traffic_is_low_precision() {
    let a = jacobi_scale(&hpcg_matrix(10, 10, 10));
    let r = f3r_result(&a, true, F3rScheme::Fp16);
    let frac16 = r.counters.traffic_fraction(Precision::Fp16);
    let frac32 = r.counters.traffic_fraction(Precision::Fp32);
    assert!(
        frac16 + frac32 > 0.6,
        "only {:.0}% of traffic below fp64",
        100.0 * (frac16 + frac32)
    );
    assert!(frac16 > 0.25, "only {:.0}% of traffic in fp16", 100.0 * frac16);
}

/// Section 5.1: F3R's advantage over restarted FGMRES(64) comes from the
/// much cheaper Arnoldi process of its nested structure plus the fp16
/// storage.  The scale-robust form of that claim is *per preconditioning
/// step*: fp16-F3R must move clearly fewer modeled bytes per application of
/// `M` than fp64-FGMRES(64) does.  (Total traffic also favours F3R on the
/// paper's hard problems, but at laptop scale easy problems converge in a
/// fraction of one FGMRES(64) cycle, so the per-step form is asserted.)
#[test]
fn f3r_beats_restarted_fgmres_in_traffic() {
    let a = jacobi_scale(&hpgmp_matrix(10, 10, 10, 0.5));
    let n = a.n_rows();
    let b = random_rhs(n, 9);
    let matrix = Arc::new(ProblemMatrix::from_csr(a));
    let precond = PrecondKind::BlockJacobiIlu0 { blocks: 4, alpha: 1.0 };

    let mut f3r = SolverBuilder::new(Arc::clone(&matrix))
        .scheme(F3rScheme::Fp16)
        .precond(precond)
        .build()
        .session();
    let mut x = vec![0.0; n];
    let rf3r = f3r.solve(&b, &mut x);

    let mut fgmres = RestartedFgmresSolver::new(
        Arc::clone(&matrix),
        64,
        BaselineConfig {
            precond,
            max_iterations: 10_000,
            ..BaselineConfig::default()
        },
    );
    let mut x2 = vec![0.0; n];
    let rfg = fgmres.solve(&b, &mut x2);

    assert!(rf3r.converged && rfg.converged);
    let f3r_per_step = rf3r.modeled_bytes() as f64 / rf3r.precond_applications as f64;
    let fgmres_per_step = rfg.modeled_bytes() as f64 / rfg.precond_applications as f64;
    assert!(
        f3r_per_step < fgmres_per_step,
        "fp16-F3R should move fewer bytes per preconditioning step than fp64-FGMRES(64): {f3r_per_step:.0} vs {fgmres_per_step:.0}"
    );
}

/// Section 4.1 worked example: with cA = 45 and m = 64 the best two-level
/// split is m̄ = 10, and nesting beats the reference.
#[test]
fn cost_model_worked_example() {
    let best = best_split(RowCosts::paper_example(), 64);
    assert_eq!(best.m_outer, 10);
    assert!(best.nested_traffic < best.reference_traffic);
}

/// Section 6.2 (Assumption (ii)): replacing the innermost FGMRES(2) of F4 by
/// Richardson(2) — i.e. going from F4 to fp16-F3R — must not change the
/// number of preconditioning steps appreciably.  A weak Jacobi primary
/// preconditioner is used so that convergence takes enough outermost
/// iterations for the 64-per-iteration quantisation not to dominate.
#[test]
fn richardson_innermost_matches_fgmres2_innermost() {
    let a = jacobi_scale(&hpcg_matrix(12, 12, 12));
    let n = a.n_rows();
    let b = random_rhs(n, 21);
    let matrix = Arc::new(ProblemMatrix::from_csr(a));
    let settings = SolverSettings {
        precond: PrecondKind::Jacobi,
        ..SolverSettings::default()
    };
    let mut f3r = SolverBuilder::new(Arc::clone(&matrix))
        .scheme(F3rScheme::Fp16)
        .precond(PrecondKind::Jacobi)
        .build()
        .session();
    let mut f4 = SolverBuilder::new(Arc::clone(&matrix))
        .spec(f4_spec(&settings))
        .build()
        .session();
    let mut x = vec![0.0; n];
    let r_f3r = f3r.solve(&b, &mut x);
    let mut x2 = vec![0.0; n];
    let r_f4 = f4.solve(&b, &mut x2);
    assert!(r_f3r.converged && r_f4.converged);
    let ratio = r_f3r.precond_applications as f64 / r_f4.precond_applications as f64;
    let within_one_outer =
        r_f3r.precond_applications.abs_diff(r_f4.precond_applications) <= 64;
    assert!(
        (0.55..=1.8).contains(&ratio) || within_one_outer,
        "fp16-F3R vs F4 preconditioning-step ratio {ratio:.2} ({} vs {})",
        r_f3r.precond_applications,
        r_f4.precond_applications
    );
}
