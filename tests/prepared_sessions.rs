//! Integration tests for the prepared-solver session API: one shared
//! `Arc<PreparedSolver>` driving concurrent `SolveSession`s, steady-state
//! workspace reuse, warm starts and observers — through the public `f3r`
//! umbrella crate.
//!
//! The concurrency test is exercised by CI under both the default worker
//! pool and `F3R_NUM_THREADS=2`, pinning bitwise determinism of concurrent
//! sessions against sequential runs for 1- and 2-thread pools.

use std::sync::Arc;

use f3r::prelude::*;
use f3r::sparse::gen::{hpcg_matrix, random_rhs};
use f3r::sparse::scaling::jacobi_scale;

/// fp16-F3R on a small HPCG problem, prepared once.
fn prepared_f3r() -> Arc<PreparedSolver> {
    let a = jacobi_scale(&hpcg_matrix(8, 8, 8));
    SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
        .scheme(F3rScheme::Fp16)
        .precond(PrecondKind::BlockJacobiIc0 { blocks: 4, alpha: 1.0 })
        .build()
}

/// N threads share one `Arc<PreparedSolver>` and solve different right-hand
/// sides concurrently; every solution must match the sequential run of a
/// fresh session on the same right-hand side *bitwise*.  Sessions never
/// alias mutable state, and the shared setup is immutable, so concurrency
/// must not change a single floating-point operation.
#[test]
fn concurrent_sessions_match_sequential_solves_bitwise() {
    const THREADS: usize = 4;
    let prepared = prepared_f3r();
    let n = prepared.dim();
    let rhs: Vec<Vec<f64>> = (0..THREADS as u64).map(|s| random_rhs(n, 1000 + s)).collect();

    // Sequential reference: one fresh session per right-hand side.
    let sequential: Vec<Vec<f64>> = rhs
        .iter()
        .map(|b| {
            let mut session = prepared.session();
            let mut x = vec![0.0; n];
            let r = session.solve(b, &mut x);
            assert!(r.converged, "sequential: {r}");
            x
        })
        .collect();

    // Concurrent: one thread per right-hand side, all sharing `prepared`.
    let concurrent: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = rhs
            .iter()
            .map(|b| {
                let prepared = Arc::clone(&prepared);
                scope.spawn(move || {
                    let mut session = prepared.session();
                    let mut x = vec![0.0; n];
                    let r = session.solve(b, &mut x);
                    assert!(r.converged, "concurrent: {r}");
                    x
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("solver thread panicked")).collect()
    });

    for (i, (seq, conc)) in sequential.iter().zip(concurrent.iter()).enumerate() {
        assert_eq!(
            seq.as_slice(),
            conc.as_slice(),
            "rhs {i}: concurrent solution differs bitwise from sequential"
        );
    }
}

/// The same prepared solver must also drive two *interleaved* sessions in a
/// single thread without aliasing (`&mut` is confined to each session).
#[test]
fn two_interleaved_sessions_do_not_interfere() {
    let prepared = prepared_f3r();
    let n = prepared.dim();
    let b1 = random_rhs(n, 7);
    let b2 = random_rhs(n, 8);
    let mut s1 = prepared.session();
    let mut s2 = prepared.session();
    let mut x1 = vec![0.0; n];
    let mut x2 = vec![0.0; n];
    // Interleave solves on the two sessions.
    assert!(s1.solve(&b1, &mut x1).converged);
    assert!(s2.solve(&b2, &mut x2).converged);
    let r1 = s1.solve(&b1, &mut x1);
    let r2 = s2.solve(&b2, &mut x2);
    assert!(r1.converged && r2.converged);
    assert!(prepared.matrix().true_relative_residual(&x1, &b1) < 1e-8);
    assert!(prepared.matrix().true_relative_residual(&x2, &b2) < 1e-8);
}

/// `solve_many` steady-state reuse: after the first solve allocated the
/// workspaces (generation 0 → 1), later solves must perform zero workspace
/// (re)allocations — the generation counter stays put across an entire
/// multi-rhs batch and further batches.
#[test]
fn solve_many_steady_state_performs_zero_workspace_reallocations() {
    let prepared = prepared_f3r();
    let n = prepared.dim();
    let mut session = prepared.session();
    assert_eq!(session.workspace_generation(), 0, "no workspaces before the first solve");

    let bs: Vec<Vec<f64>> = (0..4u64).map(|s| random_rhs(n, 50 + s)).collect();
    let mut xs = vec![Vec::new(); bs.len()];
    let results = session.solve_many(&bs, &mut xs);
    assert!(results.iter().all(|r| r.converged));
    assert_eq!(
        session.workspace_generation(),
        1,
        "first solve allocates the workspaces exactly once"
    );

    // Second batch: zero (re)allocations — the generation must not move.
    let gen_before = session.workspace_generation();
    let results2 = session.solve_many(&bs, &mut xs);
    assert!(results2.iter().all(|r| r.converged));
    assert_eq!(
        session.workspace_generation(),
        gen_before,
        "steady-state solve_many must not (re)allocate workspaces"
    );

    // Every solution is a real solve of its own right-hand side.
    for (b, x) in bs.iter().zip(xs.iter()) {
        assert!(prepared.matrix().true_relative_residual(x, b) < 1e-8);
    }
}

/// Warm-starting from a nearby solution must cut the outer iteration count,
/// and per-solve overrides must not disturb the session for later solves.
#[test]
fn warm_start_and_overrides_compose_on_one_session() {
    let prepared = prepared_f3r();
    let n = prepared.dim();
    let b = random_rhs(n, 33);
    let mut session = prepared.session();

    let mut x = vec![0.0; n];
    let cold = session.solve(&b, &mut x);
    assert!(cold.converged, "{cold}");

    // Loose-tolerance pass, then warm-start the full-tolerance solve from it.
    let mut x_loose = vec![0.0; n];
    let loose = session.solve_with(&b, &mut x_loose, &SolveOptions::new().tol(1e-4));
    assert!(loose.converged);
    let mut x_warm = x_loose.clone();
    let warm = session.solve_with(&b, &mut x_warm, &SolveOptions::new().x0(&x_loose));
    assert!(warm.converged);
    assert!(
        warm.outer_iterations < cold.outer_iterations,
        "warm start ({}) should beat cold start ({})",
        warm.outer_iterations,
        cold.outer_iterations
    );

    // The overrides were per-solve: a plain solve still uses the spec values.
    let plain = session.solve(&b, &mut x);
    assert!(plain.converged);
    assert!(plain.final_relative_residual < 1e-8);
    assert_eq!(session.workspace_generation(), 1);
}

/// An observer sees one event per outermost iteration and can stop the solve
/// early; the early stop is reported through `StopReason` and its `Display`.
#[test]
fn observer_early_stop_reports_stopped() {
    struct StopAfter {
        seen: usize,
        limit: usize,
    }
    impl SolveObserver for StopAfter {
        fn on_outer_iteration(&mut self, event: &OuterEvent) -> SolveControl {
            assert!(event.relative_residual_estimate.is_finite());
            self.seen += 1;
            if self.seen >= self.limit {
                SolveControl::Stop
            } else {
                SolveControl::Continue
            }
        }
    }

    let prepared = prepared_f3r();
    let n = prepared.dim();
    let b = random_rhs(n, 4);
    let mut session = prepared.session();
    let mut x = vec![0.0; n];
    let mut obs = StopAfter { seen: 0, limit: 2 };
    let r = session.solve_observed(&b, &mut x, &SolveOptions::new(), &mut obs);
    assert_eq!(obs.seen, 2);
    assert_eq!(r.outer_iterations, 2);
    assert!(!r.converged);
    assert_eq!(r.stop_reason, StopReason::Stopped);
    assert!(r.to_string().contains("stopped by observer"), "{r}");
    // The partial update was still applied: x is better than the zero guess.
    assert!(r.final_relative_residual < 1.0);
}
