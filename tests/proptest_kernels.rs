//! Property-based tests on the core data structures and numeric invariants
//! of the workspace, including the direct-widening kernel layer.
//!
//! The original version of this file used the `proptest` crate; the build
//! environment has no registry access, so the same properties (plus the
//! kernel-vs-reference equivalence properties for the unrolled/fused
//! kernels) are driven by a small seeded-case harness built on the vendored
//! `rand` shim.  Every case is reproducible from its printed seed.
//!
//! # Kernel equivalence tolerances
//!
//! The unrolled kernels in `f3r_sparse::{spmv, blas1}` must match the naive
//! reference kernels in `f3r_sparse::reference` for every `(TA, TV)`
//! precision pair the solvers use:
//!
//! * **Element-wise kernels** (axpy, axpby, waxpby, scale): outputs are
//!   rounded into the storage precision `T`, and the only legal divergence
//!   is the final rounding of differently-associated arithmetic — so the
//!   bound is **one ulp of `T` relative to the operand magnitudes entering
//!   the final rounding** per element (under cancellation the rounding error
//!   scales with |α·x| + |β·y|, not the small result; scalars are chosen
//!   exactly representable in fp16 so the reference's narrower scalar
//!   rounding cannot leak in).
//! * **Reductions** (dot, SpMV rows): both sides accumulate in
//!   `T::Accum`, but in different orders (8-way/4-way unrolling vs. strictly
//!   sequential FMA), so results may differ by the standard summation error
//!   bound — a small multiple of `n · ε_accum · Σ|xᵢ yᵢ|`, i.e. a few ulps
//!   of the accumulation precision scaled by the condition of the sum.

use std::sync::Arc;

use f3r::precision::{convert_vec, Precision, Scalar};
use f3r::prelude::*;
use f3r::sparse::gen::{random_rhs, random_spd};
use f3r::sparse::reference;
use f3r::sparse::scaling::jacobi_scale;
use f3r::sparse::spmv::{spmv_dot2, spmv_par, spmv_residual, spmv_seq};
use f3r::sparse::{blas1, CooMatrix, CsrMatrix, SellMatrix};
use half::f16;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases for cheap structural/kernel properties.
const CASES: u64 = 64;
/// Number of cases for full-solve properties (expensive).
const SOLVE_CASES: u64 = 8;

fn rng_for(test: &str, case: u64) -> StdRng {
    // Derive a per-test stream so adding cases to one test does not shift
    // the inputs of another.
    let tag: u64 = test.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    StdRng::seed_from_u64(tag ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn random_triplets(rng: &mut StdRng, n: usize, max_entries: usize) -> Vec<(usize, usize, f64)> {
    let count = rng.gen_range(1..max_entries);
    (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(-10.0..10.0)))
        .collect()
}

#[test]
#[allow(clippy::needless_range_loop)] // r/c index the dense mirror
fn coo_to_csr_preserves_entries() {
    for case in 0..CASES {
        let mut rng = rng_for("coo_to_csr", case);
        let triplets = random_triplets(&mut rng, 12, 60);
        let mut coo = CooMatrix::<f64>::new(12, 12);
        let mut dense = vec![vec![0.0f64; 12]; 12];
        for &(r, c, v) in &triplets {
            coo.push(r, c, v);
            dense[r][c] += v;
        }
        let csr = coo.to_csr();
        for r in 0..12 {
            for c in 0..12 {
                let stored = csr.get(r, c).unwrap_or(0.0);
                assert!((stored - dense[r][c]).abs() < 1e-12, "case {case} ({r},{c})");
            }
        }
    }
}

#[test]
fn transpose_twice_is_identity() {
    for case in 0..CASES {
        let mut rng = rng_for("transpose", case);
        let triplets = random_triplets(&mut rng, 10, 50);
        let mut coo = CooMatrix::<f64>::new(10, 10);
        for &(r, c, v) in &triplets {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        assert_eq!(a.transpose().transpose(), a, "case {case}");
    }
}

#[test]
fn spmv_kernels_agree() {
    for case in 0..CASES {
        let mut rng = rng_for("spmv_agree", case);
        let triplets = random_triplets(&mut rng, 16, 100);
        let x: Vec<f64> = (0..16).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut coo = CooMatrix::<f64>::new(16, 16);
        for &(r, c, v) in &triplets {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        let sell = SellMatrix::from_csr(&a, 4);
        let mut y1 = vec![0.0; 16];
        let mut y2 = vec![0.0; 16];
        let mut y3 = vec![0.0; 16];
        spmv_seq(&a, &x, &mut y1);
        spmv_par(&a, &x, &mut y2);
        f3r::sparse::spmv::spmv_sell_seq(&sell, &x, &mut y3);
        for i in 0..16 {
            assert!((y1[i] - y2[i]).abs() < 1e-10, "case {case} row {i}");
            assert!((y1[i] - y3[i]).abs() < 1e-10, "case {case} row {i}");
        }
    }
}

#[test]
fn fp16_roundtrip_error_is_bounded() {
    for case in 0..CASES {
        let mut rng = rng_for("fp16_roundtrip", case);
        let len = rng.gen_range(1..64usize);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let lo: Vec<f16> = convert_vec(&values);
        let back: Vec<f64> = convert_vec(&lo);
        for (orig, round) in values.iter().zip(back.iter()) {
            let tol = orig.abs() * f64::from(f16::EPSILON) + 1e-7;
            assert!((orig - round).abs() <= tol, "case {case}: {orig} -> {round}");
        }
    }
}

#[test]
fn dot_and_norm_are_consistent() {
    for case in 0..CASES {
        let mut rng = rng_for("dot_norm", case);
        let len = rng.gen_range(1..80usize);
        let x: Vec<f64> = (0..len).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let scale = rng.gen_range(0.5..7.5);
        let y: Vec<f64> = x.iter().rev().map(|v| v * scale).collect();
        assert!((blas1::dot(&x, &y) - blas1::dot(&y, &x)).abs() < 1e-9, "case {case}");
        let n2 = blas1::norm2(&x);
        assert!(
            (n2 * n2 - blas1::dot(&x, &x)).abs() < 1e-9 * (1.0 + n2 * n2),
            "case {case}"
        );
    }
}

#[test]
fn jacobi_scaling_normalises_diagonal() {
    for case in 0..CASES {
        let mut rng = rng_for("jacobi_scale", case);
        let n = rng.gen_range(3..20);
        let nnz = rng.gen_range(2..6);
        let a = random_spd(n, nnz, 0.7, case);
        let scaled = jacobi_scale(&a);
        for i in 0..n {
            let d = scaled.get(i, i).unwrap_or(0.0);
            assert!((d - 1.0).abs() < 1e-12, "case {case} diag {i} = {d}");
        }
        assert!(scaled.is_symmetric(1e-12), "case {case}");
        assert!(scaled.max_abs() <= 1.0 + 1e-9, "case {case}");
    }
}

#[test]
fn fp16_matrix_copy_is_faithful() {
    for case in 0..CASES {
        let mut rng = rng_for("fp16_copy", case);
        let n = rng.gen_range(4..16);
        let nnz = rng.gen_range(2..5);
        let a = jacobi_scale(&random_spd(n, nnz, 0.5, case));
        let a16: CsrMatrix<f16> = a.to_precision();
        assert_eq!(a16.nnz(), a.nnz(), "case {case}");
        for row in 0..n {
            let (cols, vals) = a.row_entries(row);
            let (cols16, vals16) = a16.row_entries(row);
            assert_eq!(cols, cols16, "case {case}");
            for (v, v16) in vals.iter().zip(vals16.iter()) {
                assert!(
                    (v - v16.to_f64()).abs() <= v.abs() * f64::from(f16::EPSILON) + 1e-7,
                    "case {case}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel-vs-reference equivalence for the direct-widening layer
// ---------------------------------------------------------------------------

/// Random square CSR matrix with a guaranteed diagonal.
fn random_csr(rng: &mut StdRng, n: usize, per_row: usize) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, rng.gen_range(0.5..2.0));
        for _ in 0..per_row {
            let j = rng.gen_range(0..n);
            coo.push(i, j, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csr()
}

/// One ulp of `v` in a precision with the given epsilon (floored so
/// zero-adjacent comparisons stay meaningful).
fn ulp(v: f64, eps: f64) -> f64 {
    v.abs().max(1e-30) * eps
}

fn spmv_matches_reference<TA: Scalar, TV: Scalar>(case: u64) {
    let mut rng = rng_for("spmv_vs_ref", case);
    let n = rng.gen_range(8..80);
    let per_row = rng.gen_range(1..8usize);
    let a64 = random_csr(&mut rng, n, per_row);
    let a: CsrMatrix<TA> = a64.to_precision();
    let x: Vec<TV> = (0..n).map(|_| TV::from_f64(rng.gen_range(-1.0..1.0))).collect();
    let b: Vec<TV> = (0..n).map(|_| TV::from_f64(rng.gen_range(-1.0..1.0))).collect();
    let eps_accum = <TV::Accum as Scalar>::epsilon();

    let mut y_new = vec![TV::zero(); n];
    let mut y_ref = vec![TV::zero(); n];
    spmv_seq(&a, &x, &mut y_new);
    reference::spmv_seq_naive(&a, &x, &mut y_ref);
    for row in 0..n {
        // Summation error bound: both kernels accumulate the same terms in
        // TV::Accum but in different orders, so they may differ by a few
        // accumulation-precision ulps of the row's absolute sum.
        let (cols, vals) = a.row_entries(row);
        let abs_sum: f64 = cols
            .iter()
            .zip(vals.iter())
            .map(|(&c, v)| (v.to_f64() * x[c as usize].to_f64()).abs())
            .sum();
        let tol = 4.0 * (cols.len().max(1) as f64) * eps_accum * abs_sum
            + ulp(y_ref[row].to_f64(), TV::epsilon());
        assert!(
            (y_new[row].to_f64() - y_ref[row].to_f64()).abs() <= tol,
            "case {case} {}x{} row {row}: {} vs {} (tol {tol:e})",
            TA::name(),
            TV::name(),
            y_new[row],
            y_ref[row],
        );
    }

    // Fused residual against the reference residual, same bound.
    let mut r_new = vec![TV::zero(); n];
    let mut r_ref = vec![TV::zero(); n];
    spmv_residual(&a, &x, &b, &mut r_new);
    reference::spmv_residual_naive(&a, &x, &b, &mut r_ref);
    for row in 0..n {
        let (cols, vals) = a.row_entries(row);
        let abs_sum: f64 = cols
            .iter()
            .zip(vals.iter())
            .map(|(&c, v)| (v.to_f64() * x[c as usize].to_f64()).abs())
            .sum::<f64>()
            + b[row].to_f64().abs();
        // The reference rounds A·x into TV before subtracting; under
        // cancellation that rounding scales with the pre-subtraction
        // magnitude, not the residual value.
        let tol = 4.0 * (cols.len().max(2) as f64) * eps_accum * abs_sum
            + 2.0 * TV::epsilon() * abs_sum
            + 2.0 * ulp(r_ref[row].to_f64(), TV::epsilon());
        assert!(
            (r_new[row].to_f64() - r_ref[row].to_f64()).abs() <= tol,
            "case {case} residual {}x{} row {row}",
            TA::name(),
            TV::name(),
        );
    }

    // Fused SpMV + dual dot: the stored vector must equal the plain SpMV
    // bit-for-bit, and the dots must match f64 reference dots on that vector.
    let mut y_fused = vec![TV::zero(); n];
    let (uy, yy) = spmv_dot2(&a, &x, &b, &mut y_fused);
    for row in 0..n {
        assert_eq!(
            y_fused[row].to_f64(),
            y_new[row].to_f64(),
            "case {case} fused spmv output row {row}"
        );
    }
    let uy_ref: f64 = b.iter().zip(&y_new).map(|(u, y)| u.to_f64() * y.to_f64()).sum();
    let yy_ref: f64 = y_new.iter().map(|y| y.to_f64() * y.to_f64()).sum();
    let dot_tol = 8.0 * (n as f64) * eps_accum * (1.0 + uy_ref.abs().max(yy_ref));
    assert!((uy - uy_ref).abs() <= dot_tol, "case {case} fused uy");
    assert!((yy - yy_ref).abs() <= dot_tol, "case {case} fused yy");
}

#[test]
fn spmv_matches_reference_for_all_precision_pairs() {
    for case in 0..CASES / 2 {
        spmv_matches_reference::<f64, f64>(case);
        spmv_matches_reference::<f64, f32>(case);
        spmv_matches_reference::<f64, f16>(case);
        spmv_matches_reference::<f32, f64>(case);
        spmv_matches_reference::<f32, f32>(case);
        spmv_matches_reference::<f32, f16>(case);
        spmv_matches_reference::<f16, f64>(case);
        spmv_matches_reference::<f16, f32>(case);
        spmv_matches_reference::<f16, f16>(case);
    }
}

fn blas1_matches_reference<T: Scalar>(case: u64) {
    let mut rng = rng_for("blas1_vs_ref", case);
    let n = rng.gen_range(1..512);
    let x: Vec<T> = (0..n).map(|_| T::from_f64(rng.gen_range(-1.0..1.0))).collect();
    let y: Vec<T> = (0..n).map(|_| T::from_f64(rng.gen_range(-1.0..1.0))).collect();
    let eps_accum = <T::Accum as Scalar>::epsilon();

    // Reductions: summation-order bound in the accumulation precision.
    let d_new = blas1::dot(&x, &y);
    let d_ref = reference::dot_naive(&x, &y);
    let abs_sum: f64 = x.iter().zip(&y).map(|(a, b)| (a.to_f64() * b.to_f64()).abs()).sum();
    let tol = 4.0 * (n as f64) * eps_accum * abs_sum + 1e-300;
    assert!(
        (d_new - d_ref).abs() <= tol,
        "case {case} dot {}: {d_new} vs {d_ref} (tol {tol:e})",
        T::name()
    );
    let (d2a, d2b) = blas1::dot2(&x, &y, &y, &x);
    assert!((d2a - d_new).abs() <= tol, "case {case} dot2.0 {}", T::name());
    assert!((d2b - d_new).abs() <= tol, "case {case} dot2.1 {}", T::name());
    let (xy, xx) = blas1::dot_with_sqnorm(&x, &y);
    assert!((xy - d_new).abs() <= tol, "case {case} dot_with_sqnorm.xy {}", T::name());
    assert!(
        (xx - blas1::dot(&x, &x)).abs() <= tol,
        "case {case} dot_with_sqnorm.xx {}",
        T::name()
    );

    // Element-wise kernels: scalars exactly representable in fp16, so the
    // only legal divergence from the reference is the final rounding of
    // differently-associated arithmetic.
    let alpha = [0.5, -1.25, 2.0, 0.375][rng.gen_range(0..4usize)];
    let beta = [0.25, -0.5, 1.5, -2.0][rng.gen_range(0..4usize)];
    // One final-rounding ulp of the storage precision, taken relative to the
    // magnitudes entering the rounding: under cancellation the product
    // rounding error (FMA on the reference side, separate multiply here)
    // scales with |α·x| + |β·y|, not with the small difference.
    let one_ulp = |m: f64| (T::epsilon() + 4.0 * eps_accum) * m.max(1e-30) + 1e-300;

    let mut y_new = y.clone();
    let mut y_ref = y.clone();
    blas1::axpy(alpha, &x, &mut y_new);
    reference::axpy_naive(alpha, &x, &mut y_ref);
    for i in 0..n {
        let (a, b) = (y_new[i].to_f64(), y_ref[i].to_f64());
        let m = (alpha * x[i].to_f64()).abs() + y[i].to_f64().abs();
        assert!((a - b).abs() <= one_ulp(m), "case {case} axpy {} [{i}]: {a} vs {b}", T::name());
    }
    let norm_fused = blas1::axpy_norm2(alpha, &x, &mut y.clone()).sqrt();
    let norm_plain = blas1::norm2(&y_new);
    assert!(
        (norm_fused - norm_plain).abs() <= 16.0 * (n as f64) * eps_accum * norm_plain.max(1e-30),
        "case {case} axpy_norm2 {}",
        T::name()
    );

    let mut y_new = y.clone();
    let mut y_ref = y.clone();
    blas1::axpby(alpha, &x, beta, &mut y_new);
    reference::axpby_naive(alpha, &x, beta, &mut y_ref);
    for i in 0..n {
        let (a, b) = (y_new[i].to_f64(), y_ref[i].to_f64());
        let m = (alpha * x[i].to_f64()).abs() + (beta * y[i].to_f64()).abs();
        // two roundings on each side of differently-associated arithmetic
        assert!((a - b).abs() <= 2.0 * one_ulp(m), "case {case} axpby {} [{i}]", T::name());
    }

    let mut w_new = vec![T::zero(); n];
    let mut w_ref = vec![T::zero(); n];
    blas1::waxpby(alpha, &x, beta, &y, &mut w_new);
    reference::waxpby_naive(alpha, &x, beta, &y, &mut w_ref);
    for i in 0..n {
        let (a, b) = (w_new[i].to_f64(), w_ref[i].to_f64());
        let m = (alpha * x[i].to_f64()).abs() + (beta * y[i].to_f64()).abs();
        assert!((a - b).abs() <= 2.0 * one_ulp(m), "case {case} waxpby {} [{i}]", T::name());
    }

    let mut s_new = x.clone();
    let mut s_ref = x.clone();
    blas1::scale(beta, &mut s_new);
    reference::scale_naive(beta, &mut s_ref);
    let mut s_into = vec![T::zero(); n];
    blas1::scale_into(beta, &x, &mut s_into);
    for i in 0..n {
        let (a, b) = (s_new[i].to_f64(), s_ref[i].to_f64());
        let m = (beta * x[i].to_f64()).abs();
        assert!((a - b).abs() <= one_ulp(m), "case {case} scale {} [{i}]", T::name());
        assert_eq!(s_new[i].to_f64(), s_into[i].to_f64(), "case {case} scale_into [{i}]");
    }
}

#[test]
fn blas1_matches_reference_for_all_precisions() {
    for case in 0..CASES {
        blas1_matches_reference::<f64>(case);
        blas1_matches_reference::<f32>(case);
        blas1_matches_reference::<f16>(case);
    }
}

// ---------------------------------------------------------------------------
// Solver-level properties (expensive; few cases)
// ---------------------------------------------------------------------------

#[test]
fn f3r_converges_on_random_spd_systems() {
    for case in 0..SOLVE_CASES {
        let mut rng = rng_for("f3r_solve", case);
        let seed = rng.gen_range(0..1000u64);
        let a = jacobi_scale(&random_spd(400, 8, 0.6, seed));
        let n = a.n_rows();
        let b = random_rhs(n, seed.wrapping_add(1));
        let matrix = Arc::new(ProblemMatrix::from_csr(a.clone()));
        let mut solver = SolverBuilder::new(matrix)
            .scheme(F3rScheme::Fp16)
            .precond(PrecondKind::BlockJacobiIc0 { blocks: 4, alpha: 1.0 })
            .build()
            .session();
        let mut x = vec![0.0; n];
        let r = solver.solve(&b, &mut x);
        assert!(r.converged, "seed {seed} residual {}", r.final_relative_residual);

        let mut ax = vec![0.0; n];
        spmv_seq(&a, &x, &mut ax);
        let num: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((num / den - r.final_relative_residual).abs() < 1e-10, "seed {seed}");
        assert!(num / den < 1e-8, "seed {seed}");
    }
}

#[test]
fn precond_count_scales_with_outer_iterations() {
    for case in 0..SOLVE_CASES {
        let mut rng = rng_for("precond_count", case);
        let seed = rng.gen_range(0..200u64);
        let a = jacobi_scale(&random_spd(300, 6, 0.8, seed));
        let n = a.n_rows();
        let b = random_rhs(n, seed);
        let matrix = Arc::new(ProblemMatrix::from_csr(a));
        let mut solver = SolverBuilder::new(matrix)
            .scheme(F3rScheme::Fp16)
            .precond(PrecondKind::Jacobi)
            .build()
            .session();
        let mut x = vec![0.0; n];
        let r = solver.solve(&b, &mut x);
        assert!(r.converged, "seed {seed}");
        // Default parameters: every outermost iteration triggers m2*m3 = 32
        // Richardson invocations of m4 = 2 sweeps, i.e. 64 M applications.
        let per_outer = 64;
        assert_eq!(r.precond_applications, (r.outer_iterations as u64) * per_outer, "seed {seed}");
    }
}

#[test]
fn precision_enum_and_scalar_agree() {
    // not property-based but belongs with the cross-crate invariants
    assert_eq!(<f16 as Scalar>::PRECISION, Precision::Fp16);
    assert_eq!(<f32 as Scalar>::PRECISION, Precision::Fp32);
    assert_eq!(<f64 as Scalar>::PRECISION, Precision::Fp64);
}
