//! Property-based tests (proptest) on the core data structures and numeric
//! invariants of the workspace.

use f3r::precision::{convert_vec, Precision, Scalar};
use f3r::prelude::*;
use f3r::sparse::blas1;
use f3r::sparse::gen::random_spd;
use f3r::sparse::scaling::jacobi_scale;
use f3r::sparse::spmv::{spmv_par, spmv_seq};
use f3r::sparse::{CooMatrix, CsrMatrix, SellMatrix};
use half::f16;
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a small random sparse square matrix given as triplets.
fn sparse_triplets(n: usize, max_entries: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec(
        (0..n, 0..n, -10.0..10.0f64),
        1..max_entries,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO → CSR assembly preserves the sum of every coordinate's entries.
    #[test]
    fn coo_to_csr_preserves_entries(triplets in sparse_triplets(12, 60)) {
        let mut coo = CooMatrix::<f64>::new(12, 12);
        let mut dense = vec![vec![0.0f64; 12]; 12];
        for &(r, c, v) in &triplets {
            coo.push(r, c, v);
            dense[r][c] += v;
        }
        let csr = coo.to_csr();
        for r in 0..12 {
            for c in 0..12 {
                let stored = csr.get(r, c).unwrap_or(0.0);
                prop_assert!((stored - dense[r][c]).abs() < 1e-12);
            }
        }
    }

    /// CSR transpose is an involution.
    #[test]
    fn transpose_twice_is_identity(triplets in sparse_triplets(10, 50)) {
        let mut coo = CooMatrix::<f64>::new(10, 10);
        for &(r, c, v) in &triplets {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// Sequential, parallel and sliced-ELLPACK SpMV agree.
    #[test]
    fn spmv_kernels_agree(triplets in sparse_triplets(16, 100), x in prop::collection::vec(-5.0..5.0f64, 16)) {
        let mut coo = CooMatrix::<f64>::new(16, 16);
        for &(r, c, v) in &triplets {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        let sell = SellMatrix::from_csr(&a, 4);
        let mut y1 = vec![0.0; 16];
        let mut y2 = vec![0.0; 16];
        let mut y3 = vec![0.0; 16];
        spmv_seq(&a, &x, &mut y1);
        spmv_par(&a, &x, &mut y2);
        f3r::sparse::spmv::spmv_sell_seq(&sell, &x, &mut y3);
        for i in 0..16 {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-10);
            prop_assert!((y1[i] - y3[i]).abs() < 1e-10);
        }
    }

    /// Precision round-trips: f64 -> f16 -> f64 error is bounded by the fp16
    /// unit roundoff relative to the magnitude (for values in fp16 range).
    #[test]
    fn fp16_roundtrip_error_is_bounded(values in prop::collection::vec(-1000.0..1000.0f64, 1..64)) {
        let lo: Vec<f16> = convert_vec(&values);
        let back: Vec<f64> = convert_vec(&lo);
        for (orig, round) in values.iter().zip(back.iter()) {
            let tol = orig.abs() * f64::from(half::f16::EPSILON) + 1e-7;
            prop_assert!((orig - round).abs() <= tol, "{} -> {}", orig, round);
        }
    }

    /// Dot product is symmetric and ‖x‖² = (x, x) for every precision.
    #[test]
    fn dot_and_norm_are_consistent(x in prop::collection::vec(-3.0..3.0f64, 1..80), seed in 0u64..100) {
        let y: Vec<f64> = x.iter().rev().map(|v| v * (seed as f64 % 7.0 + 0.5)).collect();
        prop_assert!((blas1::dot(&x, &y) - blas1::dot(&y, &x)).abs() < 1e-9);
        let n2 = blas1::norm2(&x);
        prop_assert!((n2 * n2 - blas1::dot(&x, &x)).abs() < 1e-9 * (1.0 + n2 * n2));
    }

    /// Jacobi scaling always produces a unit diagonal (up to roundoff) and
    /// preserves symmetry of SPD matrices.
    #[test]
    fn jacobi_scaling_normalises_diagonal(n in 3usize..20, nnz in 2usize..6, seed in 0u64..50) {
        let a = random_spd(n, nnz, 0.7, seed);
        let scaled = jacobi_scale(&a);
        for i in 0..n {
            let d = scaled.get(i, i).unwrap_or(0.0);
            prop_assert!((d - 1.0).abs() < 1e-12, "diag {} = {}", i, d);
        }
        prop_assert!(scaled.is_symmetric(1e-12));
        prop_assert!(scaled.max_abs() <= 1.0 + 1e-9);
    }

    /// The fp16 matrix copy used by the inner solvers never silently loses
    /// the sparsity pattern, and its values stay within fp16 rounding of the
    /// fp64 values after diagonal scaling.
    #[test]
    fn fp16_matrix_copy_is_faithful(n in 4usize..16, nnz in 2usize..5, seed in 0u64..50) {
        let a = jacobi_scale(&random_spd(n, nnz, 0.5, seed));
        let a16: CsrMatrix<f16> = a.to_precision();
        prop_assert_eq!(a16.nnz(), a.nnz());
        for row in 0..n {
            let (cols, vals) = a.row_entries(row);
            let (cols16, vals16) = a16.row_entries(row);
            prop_assert_eq!(cols, cols16);
            for (v, v16) in vals.iter().zip(vals16.iter()) {
                prop_assert!((v - v16.to_f64()).abs() <= v.abs() * f64::from(half::f16::EPSILON) + 1e-7);
            }
        }
    }
}

proptest! {
    // Solver-level properties are more expensive; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// fp16-F3R converges on random diagonally dominant SPD systems and its
    /// reported residual matches an independent fp64 evaluation.
    #[test]
    fn f3r_converges_on_random_spd_systems(seed in 0u64..1000) {
        let a = jacobi_scale(&random_spd(400, 8, 0.6, seed));
        let n = a.n_rows();
        let b = f3r::sparse::gen::random_rhs(n, seed.wrapping_add(1));
        let matrix = Arc::new(ProblemMatrix::from_csr(a.clone()));
        let settings = SolverSettings {
            precond: PrecondKind::BlockJacobiIc0 { blocks: 4, alpha: 1.0 },
            ..SolverSettings::default()
        };
        let mut solver = NestedSolver::new(matrix, f3r_spec(F3rParams::default(), F3rScheme::Fp16, &settings));
        let mut x = vec![0.0; n];
        let r = solver.solve(&b, &mut x);
        prop_assert!(r.converged, "seed {} residual {}", seed, r.final_relative_residual);

        let mut ax = vec![0.0; n];
        spmv_seq(&a, &x, &mut ax);
        let num: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!((num / den - r.final_relative_residual).abs() < 1e-10);
        prop_assert!(num / den < 1e-8);
    }

    /// The preconditioner-invocation counter (the Table 3 metric) is exactly
    /// m2·m3 invocations of the Richardson part per outermost iteration for
    /// the default F3R parameters plus the Richardson-internal M calls.
    #[test]
    fn precond_count_scales_with_outer_iterations(seed in 0u64..200) {
        let a = jacobi_scale(&random_spd(300, 6, 0.8, seed));
        let n = a.n_rows();
        let b = f3r::sparse::gen::random_rhs(n, seed);
        let matrix = Arc::new(ProblemMatrix::from_csr(a));
        let settings = SolverSettings {
            precond: PrecondKind::Jacobi,
            ..SolverSettings::default()
        };
        let mut solver = NestedSolver::new(matrix, f3r_spec(F3rParams::default(), F3rScheme::Fp16, &settings));
        let mut x = vec![0.0; n];
        let r = solver.solve(&b, &mut x);
        prop_assert!(r.converged);
        // Default parameters: every outermost iteration triggers m2*m3 = 32
        // Richardson invocations of m4 = 2 sweeps, i.e. 64 M applications.
        let per_outer = 64;
        prop_assert_eq!(r.precond_applications, (r.outer_iterations as u64) * per_outer);
    }
}

#[test]
fn precision_enum_and_scalar_agree() {
    // not property-based but belongs with the cross-crate invariants
    assert_eq!(<f16 as Scalar>::PRECISION, Precision::Fp16);
    assert_eq!(<f32 as Scalar>::PRECISION, Precision::Fp32);
    assert_eq!(<f64 as Scalar>::PRECISION, Precision::Fp64);
}
