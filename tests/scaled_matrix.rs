//! End-to-end acceptance tests for the demand-driven matrix store and scaled
//! fp16/fp32 matrix storage.
//!
//! The two headline claims:
//!
//! 1. **Laziness** — a spec whose levels stream only fp64+fp32 matrix
//!    variants materializes no fp16 copy (asserted through the store's
//!    variant accounting), and `ProblemMatrix::storage_bytes()` reports the
//!    actually-materialized footprint, not the historical eager worst case.
//! 2. **Robustness** — on a matrix whose entry dynamic range overflows an
//!    unscaled fp16 copy to ±∞, a nested solver with *scaled* fp16 matrix
//!    storage solves to the paper's 1e-8 tolerance while the unscaled fp16
//!    configuration fails, with the matrix-stream traffic per storage
//!    precision visible in the `KernelCounters` snapshots.

use std::sync::Arc;

use f3r::prelude::*;
use f3r::precision::traffic::TrafficModel;
use f3r::sparse::gen::{poisson2d_5pt, random_rhs};
use f3r::sparse::io::EntryRangeStats;
use f3r::sparse::scaling::jacobi_scale;
use f3r::sparse::{CsrMatrix, ScaledCsr};

/// An SPD system whose *entries* span ~10 orders of magnitude:
/// symmetrically diagonal-scale the (Jacobi-normalised) 2-D Laplacian by
/// `d_i = 10^{-2.5 + 5·i/n}`.  The entries reach ~1e5 — far beyond fp16's
/// largest finite value of 65504 — so the unscaled fp16 copy overflows to
/// ±∞, while smoothly varying `d` keeps the *within-row* range small, so
/// per-row power-of-two scaling recovers fp16-accurate storage.
fn wide_dynamic_range_system(nx: usize) -> CsrMatrix<f64> {
    let a = jacobi_scale(&poisson2d_5pt(nx, nx));
    let n = a.n_rows();
    let d: Vec<f64> = (0..n)
        .map(|i| 10f64.powf(-2.5 + 5.0 * i as f64 / (n - 1) as f64))
        .collect();
    a.scale_rows_cols(&d, &d)
}

fn two_level_spec(name: &str, inner_matrix: MatrixStorage) -> NestedSpec {
    NestedSpec {
        levels: vec![
            LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
            // f64 working vectors: between configurations only the matrix
            // storage differs, isolating the axis under test.
            LevelSpec::fgmres_stored(10, inner_matrix, Precision::Fp64),
        ],
        precond: PrecondKind::Jacobi,
        precond_prec: Precision::Fp64,
        tol: 1e-8,
        max_outer_cycles: 10,
        name: name.to_string(),
    }
}

#[test]
fn scaled_fp16_matrix_storage_solves_where_unscaled_fp16_fails() {
    let a = wide_dynamic_range_system(24);
    let stats = EntryRangeStats::compute(&a);
    assert!(
        !stats.fp16_representable(),
        "the test matrix must stress fp16: {stats:?}"
    );
    assert!(stats.fp16_overflow > 0, "{stats:?}");
    assert!(stats.dynamic_range > 1e8, "{stats:?}");

    let pm = Arc::new(ProblemMatrix::from_csr(a));
    let n = pm.dim();
    let b = random_rhs(n, 42);

    // Unscaled fp16 inner matrix: the ±∞ entries poison the inner level and
    // the solve cannot reach 1e-8.
    let unscaled = SolverBuilder::new(Arc::clone(&pm))
        .spec(two_level_spec(
            "unscaled-fp16",
            MatrixStorage::Plain(Precision::Fp16),
        ))
        .build();
    let mut x = vec![0.0; n];
    let r_unscaled = unscaled.session().solve(&b, &mut x);
    assert!(
        !r_unscaled.converged,
        "unscaled fp16 matrix storage should fail on this matrix, got residual {}",
        r_unscaled.final_relative_residual
    );

    // Scaled fp16 inner matrix: converges to the paper's tolerance.
    let scaled = SolverBuilder::new(Arc::clone(&pm))
        .spec(two_level_spec(
            "scaled-fp16",
            MatrixStorage::Scaled(Precision::Fp16),
        ))
        .build();
    let mut x = vec![0.0; n];
    let r_scaled = scaled.session().solve(&b, &mut x);
    assert!(
        r_scaled.converged,
        "scaled fp16 matrix storage should converge, residual {}",
        r_scaled.final_relative_residual
    );
    assert!(r_scaled.final_relative_residual < 1e-8);
    assert!(pm.true_relative_residual(&x, &b) < 1e-8);

    // Matrix-stream traffic is attributed per storage precision: the inner
    // fp16 stream and the outer fp64 stream both show up, nothing in fp32.
    let snap = &r_scaled.counters;
    assert!(snap.matrix_bytes_in(Precision::Fp16) > 0);
    assert!(snap.matrix_bytes_in(Precision::Fp64) > 0);
    assert_eq!(snap.matrix_bytes_in(Precision::Fp32), 0);
    assert_eq!(
        snap.matrix_bytes_total(),
        snap.matrix_bytes_in(Precision::Fp16) + snap.matrix_bytes_in(Precision::Fp64)
    );
    // Scaled fp16 SpMVs price in the per-row scale stream.
    let per_spmv = TrafficModel::scaled_matrix_stream_bytes(pm.nnz(), n, Precision::Fp16);
    assert_eq!(snap.matrix_bytes_in(Precision::Fp16) % per_spmv, 0);
}

#[test]
fn f64_f32_spec_materializes_no_fp16_variant() {
    let a = jacobi_scale(&poisson2d_5pt(16, 16));
    let eager_worst_case = {
        let a64 = a.storage_bytes();
        let a32 = a.to_precision::<f32>().storage_bytes();
        let a16 = a.to_precision::<f3r::precision::f16>().storage_bytes();
        a64 + a32 + a16
    };
    let pm = Arc::new(ProblemMatrix::from_csr(a));
    let base_bytes = pm.storage_bytes();

    let prepared = SolverBuilder::new(Arc::clone(&pm))
        .levels(vec![
            LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(5, Precision::Fp32, Precision::Fp32),
        ])
        .precond(PrecondKind::Jacobi)
        .build();
    let n = prepared.dim();
    let b = random_rhs(n, 7);
    let mut x = vec![0.0; n];
    assert!(prepared.session().solve(&b, &mut x).converged);

    // The store's accounting: base + fp32 variant only, no fp16 anywhere.
    let variants = pm.materialized_variants();
    assert_eq!(variants.len(), 2, "{variants:?}");
    assert!(variants
        .iter()
        .all(|v| v.storage.precision() != Precision::Fp16));
    assert!(variants.iter().all(|v| v.format == MatrixFormat::Csr));
    assert!(!pm.is_materialized(MatrixStorage::Plain(Precision::Fp16), MatrixFormat::Csr));

    // storage_bytes() reports the materialized footprint, strictly below the
    // historical eager sextet (f64+f32+f16), and above the base alone.
    assert!(pm.storage_bytes() > base_bytes);
    assert!(
        pm.storage_bytes() < eager_worst_case,
        "{} !< {}",
        pm.storage_bytes(),
        eager_worst_case
    );
}

#[test]
fn scaled_storage_on_a_benign_matrix_matches_plain_iterations() {
    // On a Jacobi-scaled matrix (entries already O(1)) scaled and plain fp16
    // inner storage must behave identically solver-wise: same convergence,
    // same outer iteration count to within one iteration.
    let a = jacobi_scale(&poisson2d_5pt(24, 24));
    let pm = Arc::new(ProblemMatrix::from_csr(a));
    let n = pm.dim();
    let b = random_rhs(n, 5);
    let run = |storage: MatrixStorage| {
        let prepared = SolverBuilder::new(Arc::clone(&pm))
            .spec(two_level_spec(&format!("{storage}"), storage))
            .build();
        let mut x = vec![0.0; n];
        let r = prepared.session().solve(&b, &mut x);
        assert!(r.converged, "{storage}: {}", r.final_relative_residual);
        r.outer_iterations
    };
    let plain = run(MatrixStorage::Plain(Precision::Fp16));
    let scaled = run(MatrixStorage::Scaled(Precision::Fp16));
    assert!(
        (plain as i64 - scaled as i64).abs() <= 1,
        "plain {plain} vs scaled {scaled} outer iterations"
    );
}

#[test]
fn property_scaled_spmv_tracks_f64_reference_within_storage_eps() {
    // Pseudo-random sparse matrices with entries spanning 1e-12..1e12: the
    // scaled fp16/fp32 SpMV must stay within storage-eps of the f64
    // reference row-wise (relative to the row amplitude), while the unscaled
    // fp16 conversion of the same matrix produces inf/0 entries.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    for case in 0..20 {
        let n = 8 + (next() % 56) as usize;
        // Build a random sparse row pattern with huge per-row amplitudes.
        let mut coo = f3r::sparse::CooMatrix::new(n, n);
        for i in 0..n {
            let row_mag = 10f64.powf(((next() % 25) as f64) - 12.0);
            let entries = 1 + (next() % 5) as usize;
            coo.push(i, i, row_mag);
            for _ in 0..entries {
                let j = (next() % n as u64) as usize;
                let v = row_mag * ((next() % 2000) as f64 / 1000.0 - 1.0);
                coo.push(i, j, v);
            }
        }
        let a = coo.to_csr();
        let x: Vec<f64> = (0..n).map(|_| (next() % 1000) as f64 / 1000.0 - 0.5).collect();
        let mut y_ref = vec![0.0f64; n];
        f3r::sparse::spmv::spmv_seq(&a, &x, &mut y_ref);

        let s16 = ScaledCsr::<f3r::precision::f16>::from_f64(&a);
        let s32 = ScaledCsr::<f32>::from_f64(&a);
        let mut y16 = vec![0.0f64; n];
        let mut y32 = vec![0.0f64; n];
        f3r::sparse::spmv::spmv_scaled(&s16, &x, &mut y16);
        f3r::sparse::spmv::spmv_scaled(&s32, &x, &mut y32);
        for i in 0..n {
            // ≤ 6 entries/row, |x| ≤ 1/2 → error ≤ 3·eps_storage·scale.
            let tol16 = 3.0 * 2.0f64.powi(-11) * s16.row_scales()[i];
            let tol32 = 3.0 * 2.0f64.powi(-24) * s32.row_scales()[i];
            assert!(
                (y16[i] - y_ref[i]).abs() <= tol16,
                "case {case}, row {i}: fp16 {} vs {}",
                y16[i],
                y_ref[i]
            );
            assert!(
                (y32[i] - y_ref[i]).abs() <= tol32,
                "case {case}, row {i}: fp32 {} vs {}",
                y32[i],
                y_ref[i]
            );
            assert!(y16[i].is_finite() && y32[i].is_finite());
        }
    }
}
