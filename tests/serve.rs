//! Integration tests for the serving layer: fingerprint-keyed registry with
//! single-flight construction and pin-aware LRU eviction, warm session pools,
//! and the admission-controlled front-end — through the public `f3r` umbrella
//! crate.
//!
//! The served-vs-direct bitwise test runs in CI under the default worker
//! pool, `F3R_NUM_THREADS=2` and the forced-scalar kernel backend; the specs
//! used here are FGMRES-only chains, the configurations for which warm
//! session reuse is bitwise-deterministic (adaptive Richardson weights, the
//! documented exception, persist across solves in a warm session).

use std::sync::Arc;

use f3r::prelude::*;
use f3r::serve::{
    Backpressure, RegistryConfig, RequestOptions, ServeConfig, ServeHandle, SolverRegistry,
    SubmitError,
};
use f3r::sparse::gen::laplacian::poisson2d_5pt;
use f3r::sparse::gen::random_rhs;

fn matrix(nx: usize) -> Arc<ProblemMatrix> {
    Arc::new(ProblemMatrix::from_csr(poisson2d_5pt(nx, nx)))
}

/// FGMRES-only two-level spec: warm sessions replay it bitwise.
fn spec() -> NestedSpec {
    f2_spec(&SolverSettings::default())
}

/// N threads race `get_or_prepare` for one key: the registry must build the
/// solver exactly once (single-flight) and hand every thread the same
/// prepared instance.
#[test]
fn concurrent_lookups_build_once() {
    const THREADS: usize = 8;
    let registry = SolverRegistry::with_defaults();
    let m = matrix(24);
    let s = spec();

    let solvers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let registry = Arc::clone(&registry);
                let m = Arc::clone(&m);
                let s = s.clone();
                scope.spawn(move || registry.get_or_prepare(&m, &s).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = registry.stats();
    assert_eq!(stats.builds, 1, "single-flight: one build for {THREADS} racers");
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits as usize, THREADS - 1);
    assert_eq!(stats.entries, 1);
    assert!(stats.resident_bytes > 0, "entries are priced by storage_bytes");
    let first = solvers[0].prepared();
    for s in &solvers[1..] {
        assert!(
            Arc::ptr_eq(first, s.prepared()),
            "all racers share one PreparedSolver"
        );
    }
}

/// Solutions served through the front-end (concurrent workers, pooled warm
/// sessions) must be bitwise-identical to direct sequential `SolveSession`
/// runs.  Exercised under 1- and 2-worker pools; CI re-runs the whole test
/// under `F3R_NUM_THREADS=2` and the forced-scalar kernel backend.
#[test]
fn served_solutions_match_direct_solves_bitwise() {
    const REQUESTS: usize = 6;
    let m = matrix(32);
    let s = spec();
    let n = m.dim();
    let rhs: Vec<Vec<f64>> = (0..REQUESTS as u64).map(|i| random_rhs(n, 40 + i)).collect();

    // Direct reference: fresh session per right-hand side, sequential.
    let direct: Vec<Vec<f64>> = rhs
        .iter()
        .map(|b| {
            let prepared = SolverBuilder::new(Arc::clone(&m)).spec(s.clone()).build();
            let mut session = prepared.session();
            let mut x = vec![0.0; n];
            let r = session.solve(b, &mut x);
            assert!(r.converged, "direct: {r}");
            x
        })
        .collect();

    for workers in [1, 2] {
        let registry = SolverRegistry::with_defaults();
        let serve = ServeHandle::start(
            Arc::clone(&registry),
            ServeConfig {
                workers,
                queue_capacity: REQUESTS,
                backpressure: Backpressure::Block,
            },
        );
        let solver = registry.get_or_prepare(&m, &s).unwrap();
        let tickets: Vec<_> = rhs
            .iter()
            .map(|b| serve.submit(&solver, b.clone(), RequestOptions::default()).unwrap())
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait();
            assert!(response.results[0].converged, "served: {}", response.results[0]);
            assert_eq!(response.fingerprint, solver.fingerprint());
            assert_eq!(
                response.xs[0], direct[i],
                "served solution {i} differs bitwise under {workers} worker(s)"
            );
        }
        let metrics = serve.metrics();
        assert_eq!(metrics.completed, REQUESTS as u64);
        assert_eq!(metrics.solves, REQUESTS as u64);
        assert!(metrics.p50_seconds.is_some() && metrics.p99_seconds.is_some());
        assert!(
            metrics.kernels.spmv_calls.iter().sum::<u64>() > 0,
            "kernel counters aggregate across requests"
        );
        serve.shutdown();
    }
}

/// Eviction is LRU-first under the entry cap and never removes an entry with
/// checked-out sessions: live requests win over the cap.
#[test]
fn eviction_is_lru_first_and_skips_pinned_entries() {
    let registry = SolverRegistry::new(RegistryConfig {
        max_entries: 2,
        max_bytes: u64::MAX,
        max_idle_sessions: 2,
    });
    let s = spec();
    let (ma, mb, mc, md) = (matrix(8), matrix(12), matrix(16), matrix(20));

    let a = registry.get_or_prepare(&ma, &s).unwrap();
    let _pin = a.checkout(); // A has a live session: not evictable.
    let b = registry.get_or_prepare(&mb, &s).unwrap();
    let c = registry.get_or_prepare(&mc, &s).unwrap();

    // Over the 2-entry cap; LRU order among unpinned entries is B < C.
    assert!(registry.contains(a.fingerprint()), "pinned entry must survive");
    assert!(!registry.contains(b.fingerprint()), "LRU unpinned entry evicted");
    assert!(registry.contains(c.fingerprint()));
    assert_eq!(registry.stats().evictions, 1);

    // The detached handle stays usable after eviction.
    let n = mb.dim();
    let mut x = vec![0.0; n];
    let r = b.checkout().solve(&random_rhs(n, 7), &mut x);
    assert!(r.converged, "evicted handle: {r}");

    // Unpin A: it is now the least recently used and the next victim.
    drop(_pin);
    let _d = registry.get_or_prepare(&md, &s).unwrap();
    assert!(!registry.contains(a.fingerprint()), "unpinned LRU entry evicted");
    assert!(registry.contains(c.fingerprint()));
    assert_eq!(registry.len(), 2);
}

/// A byte cap prices entries by `PreparedSolver::storage_bytes()` and evicts
/// to stay under it.
#[test]
fn byte_cap_drives_eviction() {
    let s = spec();
    let (ma, mb) = (matrix(16), matrix(24));
    let bytes_a = SolverBuilder::new(Arc::clone(&ma)).spec(s.clone()).build().storage_bytes();
    let bytes_b = SolverBuilder::new(Arc::clone(&mb)).spec(s.clone()).build().storage_bytes();

    // Cap fits either solver alone but not both.
    let registry = SolverRegistry::new(RegistryConfig {
        max_entries: 64,
        max_bytes: bytes_a.max(bytes_b) + bytes_a.min(bytes_b) / 2,
        max_idle_sessions: 2,
    });
    let a = registry.get_or_prepare(&ma, &s).unwrap();
    assert_eq!(registry.stats().resident_bytes, bytes_a);
    let _b = registry.get_or_prepare(&mb, &s).unwrap();
    assert!(!registry.contains(a.fingerprint()), "byte cap evicts the LRU entry");
    assert_eq!(registry.stats().resident_bytes, bytes_b);
}

/// Under `Backpressure::Reject` a flooded queue fails submissions immediately
/// instead of deadlocking, and every *accepted* request still completes.
#[test]
fn reject_backpressure_errors_instead_of_deadlocking() {
    const FLOOD: usize = 50;
    let registry = SolverRegistry::with_defaults();
    let serve = ServeHandle::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject,
        },
    );
    let m = matrix(48);
    let solver = registry.get_or_prepare(&m, &spec()).unwrap();
    let b = random_rhs(m.dim(), 3);

    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..FLOOD {
        match serve.submit(&solver, b.clone(), RequestOptions::default()) {
            Ok(ticket) => accepted.push(ticket),
            Err(SubmitError::Rejected { .. }) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(rejected > 0, "a 1-deep queue must reject under a {FLOOD}-request flood");
    assert!(!accepted.is_empty());
    for ticket in accepted {
        assert!(ticket.wait().results[0].converged);
    }
    let metrics = serve.metrics();
    assert_eq!(metrics.rejected, rejected);
    assert_eq!(metrics.submitted + metrics.rejected, FLOOD as u64);
    serve.shutdown();
}

/// Pool round-trips preserve session warmth: the returned session keeps its
/// allocated workspaces (`workspace_generation()` stays at 1) and the second
/// checkout is warm.
#[test]
fn pool_checkout_return_preserves_workspace_generation() {
    let registry = SolverRegistry::with_defaults();
    let m = matrix(24);
    let solver = registry.get_or_prepare(&m, &spec()).unwrap();
    let n = m.dim();
    let b = random_rhs(n, 11);
    let mut x = vec![0.0; n];

    {
        let mut session = solver.checkout();
        assert_eq!(session.workspace_generation(), 0, "cold session starts unallocated");
        assert!(session.solve(&b, &mut x).converged);
        assert_eq!(session.workspace_generation(), 1);
        assert!(session.workspace_bytes() > 0);
    } // guard drop returns the session to the pool

    let pool = solver.pool();
    assert_eq!(pool.idle_len(), 1);
    assert!(pool.idle_workspace_bytes() > 0);

    let mut session = solver.checkout();
    assert_eq!(
        session.workspace_generation(),
        1,
        "warm checkout reuses the already-allocated workspaces"
    );
    assert!(session.solve(&b, &mut x).converged);
    assert_eq!(session.workspace_generation(), 1, "steady state: no reallocation");
    drop(session);

    let stats = pool.stats();
    assert_eq!(stats.cold_checkouts, 1);
    assert_eq!(stats.warm_checkouts, 1);
    assert_eq!(stats.checked_out, 0);
    assert_eq!(stats.fingerprint, solver.fingerprint());
}

/// Per-request options apply to single-RHS requests; a multi-RHS batch with
/// options is refused up front (the fused batch path has no overrides).
#[test]
fn request_options_and_batch_contract() {
    let registry = SolverRegistry::with_defaults();
    let serve = ServeHandle::start(Arc::clone(&registry), ServeConfig::default());
    let m = matrix(24);
    let solver = registry.get_or_prepare(&m, &spec()).unwrap();
    let n = m.dim();
    let b = random_rhs(n, 5);

    // A loose tolerance override must reach the solve.
    let loose = serve
        .submit(
            &solver,
            b.clone(),
            RequestOptions { tol: Some(1e-2), ..RequestOptions::default() },
        )
        .unwrap()
        .wait();
    let tight = serve.submit(&solver, b.clone(), RequestOptions::default()).unwrap().wait();
    assert!(loose.results[0].converged && tight.results[0].converged);
    assert!(
        loose.results[0].outer_iterations < tight.results[0].outer_iterations,
        "tol override must shorten the solve ({} vs {})",
        loose.results[0].outer_iterations,
        tight.results[0].outer_iterations
    );

    // Batch submission: one fused solve, one result per right-hand side.
    let bs: Vec<Vec<f64>> = (0..3).map(|i| random_rhs(n, 60 + i)).collect();
    let batch = serve.submit_batch(&solver, bs.clone(), RequestOptions::default()).unwrap().wait();
    assert_eq!(batch.xs.len(), 3);
    assert_eq!(batch.results.len(), 3);
    assert!(batch.results.iter().all(|r| r.converged));

    // Options on a multi-RHS batch are a contract violation, not a silent no-op.
    let err = serve
        .submit_batch(
            &solver,
            bs,
            RequestOptions { tol: Some(1e-2), ..RequestOptions::default() },
        )
        .unwrap_err();
    assert!(matches!(err, SubmitError::Rejected { .. }));
    serve.shutdown();
}

/// After shutdown, new submissions fail with `ShuttingDown` while previously
/// accepted requests complete (drain semantics are covered implicitly by
/// `shutdown` joining the workers).
#[test]
fn shutdown_refuses_new_work() {
    let registry = SolverRegistry::with_defaults();
    let serve = ServeHandle::start(Arc::clone(&registry), ServeConfig::default());
    let m = matrix(16);
    let solver = registry.get_or_prepare(&m, &spec()).unwrap();
    let b = random_rhs(m.dim(), 1);

    let ticket = serve.submit(&solver, b.clone(), RequestOptions::default()).unwrap();
    assert!(ticket.wait().results[0].converged);
    serve.shutdown();

    // The handle is consumed by shutdown; a second front-end over the same
    // registry still hits the cached solver (warm across front-ends).
    let serve2 = ServeHandle::start(Arc::clone(&registry), ServeConfig::default());
    let hits_before = registry.stats().hits;
    let again = registry.get_or_prepare(&m, &spec()).unwrap();
    assert_eq!(registry.stats().hits, hits_before + 1);
    assert!(serve2
        .submit(&again, b, RequestOptions::default())
        .unwrap()
        .wait()
        .results[0]
        .converged);
    serve2.shutdown();
}
