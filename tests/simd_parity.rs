//! SIMD/scalar parity sweep for the runtime-dispatched kernel backend.
//!
//! The `f3r-simd` crate intercepts the hot kernels in `f3r_sparse::{spmv,
//! blas1}` when the CPU supports F16C/AVX2/FMA.  This suite drives the
//! *dispatched* kernels (whatever backend the process latched — `auto` on
//! CI's main legs, `scalar` on the forced leg) against the naive
//! `f3r_sparse::reference` kernels and against each other, over the inputs
//! where vectorised code paths earn their keep and where they historically
//! go wrong:
//!
//! * odd lengths and remainder tails (1, 7, 9, 17, 31, …) around the 8-wide
//!   unroll and the 4096-element cascade boundary,
//! * CSR rows dense enough (≥ 8 nnz) that the gather-based SpMV row kernel
//!   actually engages, alongside empty rows and sub-width rows,
//! * SELL chunks that are and are not multiples of the 8-row group kernel,
//! * extreme amplitudes: fp16 subnormals, and `f64` magnitudes far outside
//!   the fp16/fp32 exponent range through the compressed-basis kernels.
//!
//! # Tolerances
//!
//! The bounds are the ones documented in `crates/simd/src/lib.rs` and
//! `tests/proptest_kernels.rs`:
//!
//! * **Element-wise kernels** (axpy, waxpby, scale, hadamard, compress /
//!   decompress): the SIMD kernels are bit-identical to the scalar unrolled
//!   kernels, so the only divergence from the *reference* is the final
//!   rounding of differently-associated arithmetic — one storage-precision
//!   ulp relative to the operand magnitudes entering the rounding.
//! * **Reductions** (dot, SpMV rows, norms, sum): both sides accumulate in
//!   `T::Accum` but in different orders (8-wide SIMD lanes vs. sequential),
//!   so they may differ by the standard summation bound, a small multiple
//!   of `n · ε_accum · Σ|terms|`.
//! * **`norm_inf`**: exactly equal — `max` commutes, and the SIMD kernel
//!   reproduces the scalar NaN-dropping `>` semantics.
//! * **Fused vs. unfused** (`axpy` vs. `axpy_norm2` vector output,
//!   `scale` vs. `scale_into`, seq vs. par): bit-identical by design; these
//!   are asserted with `assert_eq!` on the bits.

use f3r::precision::{Precision, Scalar};
use f3r::sparse::reference;
use f3r::sparse::spmv::{
    spmv_dot2, spmv_multi, spmv_multi_par, spmv_multi_seq, spmv_par, spmv_residual,
    spmv_scaled_multi, spmv_scaled_seq, spmv_scaled_sell_multi, spmv_scaled_sell_seq, spmv_seq,
    spmv_sell_multi, spmv_sell_par, spmv_sell_seq,
};
use f3r::sparse::{blas1, CooMatrix, CsrMatrix, ScaledCsr, ScaledSell, SellMatrix};
use half::f16;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lengths that stress the 8-wide unroll, its remainder tail, and the
/// 4096-element cascade boundary.
const LENGTHS: &[usize] = &[1, 2, 7, 8, 9, 16, 17, 31, 63, 100, 255, 1023, 4095, 4096, 4097];

fn rng_for(test: &str, case: u64) -> StdRng {
    let tag: u64 = test.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    StdRng::seed_from_u64(tag ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One ulp of `v` in a precision with the given epsilon (floored so
/// zero-adjacent comparisons stay meaningful).
fn ulp(v: f64, eps: f64) -> f64 {
    v.abs().max(1e-30) * eps
}

/// Square CSR matrix whose every row has exactly `per_row` distinct entries
/// (consecutive columns starting at the diagonal, wrapping), so the
/// gather-based SIMD row kernel engages whenever `per_row >= 8`.
fn dense_rows_csr(rng: &mut StdRng, n: usize, per_row: usize) -> CsrMatrix<f64> {
    assert!(per_row <= n);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        for k in 0..per_row {
            let j = (i + k) % n;
            let v = if k == 0 { rng.gen_range(1.0..2.0) } else { rng.gen_range(-1.0..1.0) };
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

/// Row-wise `Σ|aᵢⱼ·xⱼ|`, the conditioning term of the summation bound.
fn row_abs_sum<TA: Scalar, TV: Scalar>(a: &CsrMatrix<TA>, x: &[TV], row: usize) -> f64 {
    let (cols, vals) = a.row_entries(row);
    cols.iter()
        .zip(vals.iter())
        .map(|(&c, v)| (v.to_f64() * x[c as usize].to_f64()).abs())
        .sum()
}

// ---------------------------------------------------------------------------
// SpMV: dense rows (SIMD gather path), empty rows, SELL groups
// ---------------------------------------------------------------------------

fn spmv_dense_rows_parity<TA: Scalar, TV: Scalar>(case: u64) {
    let mut rng = rng_for("simd_spmv", case);
    // Row widths straddling the `>= 8 nnz` SIMD gate: 8 (exactly one group
    // of gathers, no tail), 11 and 19 (tails of 3), plus sub-width 5 rows.
    let per_row = [5, 8, 11, 19][(case % 4) as usize];
    let n = rng.gen_range(9..48.max(per_row + 1));
    let per_row = per_row.min(n);
    let a64 = dense_rows_csr(&mut rng, n, per_row);
    let a: CsrMatrix<TA> = a64.to_precision();
    let x: Vec<TV> = (0..n).map(|_| TV::from_f64(rng.gen_range(-1.0..1.0))).collect();
    let b: Vec<TV> = (0..n).map(|_| TV::from_f64(rng.gen_range(-1.0..1.0))).collect();
    let eps_accum = <TV::Accum as Scalar>::epsilon();

    let mut y_new = vec![TV::zero(); n];
    let mut y_par = vec![TV::zero(); n];
    let mut y_ref = vec![TV::zero(); n];
    spmv_seq(&a, &x, &mut y_new);
    spmv_par(&a, &x, &mut y_par);
    reference::spmv_seq_naive(&a, &x, &mut y_ref);
    for row in 0..n {
        // seq and par must agree bit-for-bit: path choice depends only on
        // the row, never on which task computes it.
        assert_eq!(
            y_new[row].to_f64(),
            y_par[row].to_f64(),
            "case {case} {}x{} seq/par row {row}",
            TA::name(),
            TV::name()
        );
        let abs_sum = row_abs_sum(&a, &x, row);
        let tol = 4.0 * (per_row as f64) * eps_accum * abs_sum
            + ulp(y_ref[row].to_f64(), TV::epsilon());
        assert!(
            (y_new[row].to_f64() - y_ref[row].to_f64()).abs() <= tol,
            "case {case} {}x{} row {row} ({} nnz): {} vs {} (tol {tol:e})",
            TA::name(),
            TV::name(),
            per_row,
            y_new[row],
            y_ref[row],
        );
    }

    // Fused residual: same row sums, minus b, same bound structure as the
    // reference (which rounds A·x into TV before subtracting).
    let mut r_new = vec![TV::zero(); n];
    let mut r_ref = vec![TV::zero(); n];
    spmv_residual(&a, &x, &b, &mut r_new);
    reference::spmv_residual_naive(&a, &x, &b, &mut r_ref);
    for row in 0..n {
        let abs_sum = row_abs_sum(&a, &x, row) + b[row].to_f64().abs();
        let tol = 4.0 * (per_row as f64) * eps_accum * abs_sum
            + 2.0 * TV::epsilon() * abs_sum
            + 2.0 * ulp(r_ref[row].to_f64(), TV::epsilon());
        assert!(
            (r_new[row].to_f64() - r_ref[row].to_f64()).abs() <= tol,
            "case {case} residual {}x{} row {row}",
            TA::name(),
            TV::name(),
        );
    }

    // Fused SpMV + dual dot: stored vector bit-identical to the plain SpMV.
    let mut y_fused = vec![TV::zero(); n];
    let (uy, yy) = spmv_dot2(&a, &x, &b, &mut y_fused);
    for row in 0..n {
        assert_eq!(
            y_fused[row].to_f64(),
            y_new[row].to_f64(),
            "case {case} fused spmv row {row}"
        );
    }
    let uy_ref: f64 = b.iter().zip(&y_new).map(|(u, y)| u.to_f64() * y.to_f64()).sum();
    let yy_ref: f64 = y_new.iter().map(|y| y.to_f64() * y.to_f64()).sum();
    let dot_tol = 8.0 * (n as f64) * eps_accum * (1.0 + uy_ref.abs().max(yy_ref));
    assert!((uy - uy_ref).abs() <= dot_tol, "case {case} fused uy");
    assert!((yy - yy_ref).abs() <= dot_tol, "case {case} fused yy");
}

#[test]
fn spmv_dense_rows_match_reference_all_pairs() {
    for case in 0..24 {
        spmv_dense_rows_parity::<f64, f64>(case);
        spmv_dense_rows_parity::<f64, f32>(case);
        spmv_dense_rows_parity::<f64, f16>(case);
        spmv_dense_rows_parity::<f32, f64>(case);
        spmv_dense_rows_parity::<f32, f32>(case);
        spmv_dense_rows_parity::<f32, f16>(case);
        spmv_dense_rows_parity::<f16, f64>(case);
        spmv_dense_rows_parity::<f16, f32>(case);
        spmv_dense_rows_parity::<f16, f16>(case);
    }
}

#[test]
fn spmv_handles_empty_and_short_rows() {
    // Matrix mixing empty rows, 1-entry rows, and 12-entry rows: the SIMD
    // gate is per-row, so each takes its own path inside one sweep.
    let mut rng = rng_for("simd_empty_rows", 0);
    let n = 24;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        match i % 3 {
            0 => {} // empty row
            1 => coo.push(i, i, rng.gen_range(0.5..1.5)),
            _ => {
                for k in 0..12 {
                    coo.push(i, (i + k) % n, rng.gen_range(-1.0..1.0));
                }
            }
        }
    }
    let a = coo.to_csr();
    let a16: CsrMatrix<f16> = a.to_precision();
    let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
    let mut y_new = vec![0.0f32; n];
    let mut y_ref = vec![0.0f32; n];
    spmv_seq(&a16, &x, &mut y_new);
    reference::spmv_seq_naive(&a16, &x, &mut y_ref);
    for row in 0..n {
        if row % 3 == 0 {
            assert_eq!(y_new[row], 0.0, "empty row {row}");
        }
        let abs_sum = row_abs_sum(&a16, &x, row);
        let tol = 48.0 * f64::from(f32::EPSILON) * abs_sum + ulp(f64::from(y_ref[row]), 1e-7);
        assert!(
            (f64::from(y_new[row]) - f64::from(y_ref[row])).abs() <= tol,
            "row {row}: {} vs {}",
            y_new[row],
            y_ref[row]
        );
    }
}

fn sell_parity<TA: Scalar, TV: Scalar>(case: u64, chunk: usize) {
    let mut rng = rng_for("simd_sell", case * 101 + chunk as u64);
    // Sizes that leave a partial trailing group/chunk on purpose.
    let n = rng.gen_range(8..70);
    let per_row = rng.gen_range(3..14usize).min(n);
    let a64 = dense_rows_csr(&mut rng, n, per_row);
    let a: CsrMatrix<TA> = a64.to_precision();
    let sell: SellMatrix<TA> = SellMatrix::from_csr(&a, chunk);
    let x: Vec<TV> = (0..n).map(|_| TV::from_f64(rng.gen_range(-1.0..1.0))).collect();
    let eps_accum = <TV::Accum as Scalar>::epsilon();

    let mut y_csr = vec![TV::zero(); n];
    let mut y_seq = vec![TV::zero(); n];
    let mut y_par = vec![TV::zero(); n];
    spmv_seq(&a, &x, &mut y_csr);
    spmv_sell_seq(&sell, &x, &mut y_seq);
    spmv_sell_par(&sell, &x, &mut y_par);
    for row in 0..n {
        // seq == par bit-for-bit: a task whose boundary cuts a group of 8
        // computes the full group and emits only its own rows.
        assert_eq!(
            y_seq[row].to_f64(),
            y_par[row].to_f64(),
            "case {case} chunk {chunk} {}x{} sell seq/par row {row}",
            TA::name(),
            TV::name()
        );
        // SELL vs CSR: same terms, both orders are legal accumulation
        // orders, so the summation bound applies.
        let abs_sum = row_abs_sum(&a, &x, row);
        let tol = 4.0 * (per_row as f64) * eps_accum * abs_sum
            + ulp(y_csr[row].to_f64(), TV::epsilon());
        assert!(
            (y_seq[row].to_f64() - y_csr[row].to_f64()).abs() <= tol,
            "case {case} chunk {chunk} {}x{} sell/csr row {row}: {} vs {}",
            TA::name(),
            TV::name(),
            y_seq[row],
            y_csr[row],
        );
    }
}

#[test]
fn sell_agrees_with_csr_across_chunk_sizes() {
    for case in 0..8 {
        // chunk 4: group kernel gated off (not a multiple of 8); chunk 8 and
        // 32: the 8-row SIMD group path engages where the backend allows.
        for &chunk in &[4usize, 8, 32] {
            sell_parity::<f64, f64>(case, chunk);
            sell_parity::<f16, f32>(case, chunk);
            sell_parity::<f16, f16>(case, chunk);
            sell_parity::<f32, f64>(case, chunk);
        }
    }
}

#[test]
fn scaled_spmv_matches_unscaled_reference() {
    for case in 0..8 {
        let mut rng = rng_for("simd_scaled", case);
        let n = rng.gen_range(10..50);
        let per_row = rng.gen_range(8..12usize).min(n);
        let a64 = dense_rows_csr(&mut rng, n, per_row);
        let scaled: ScaledCsr<f16> = ScaledCsr::from_f64(&a64);
        let ssell: ScaledSell<f16> = ScaledSell::from_csr_f64(&a64, 8);
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();

        let mut y_scaled = vec![0.0f32; n];
        let mut y_sell = vec![0.0f32; n];
        spmv_scaled_seq(&scaled, &x, &mut y_scaled);
        spmv_scaled_sell_seq(&ssell, &x, &mut y_sell);

        // Reference: row sums of the *stored* fp16 matrix accumulated in
        // f64, then the exact per-row f64 scale applied.
        for row in 0..n {
            let (cols, vals) = scaled.matrix().row_entries(row);
            let exact: f64 = cols
                .iter()
                .zip(vals.iter())
                .map(|(&c, v)| v.to_f64() * f64::from(x[c as usize]))
                .sum::<f64>()
                * scaled.row_scales()[row];
            let abs_sum: f64 = cols
                .iter()
                .zip(vals.iter())
                .map(|(&c, v)| (v.to_f64() * f64::from(x[c as usize])).abs())
                .sum::<f64>()
                * scaled.row_scales()[row].abs();
            let tol = 8.0 * (per_row as f64) * f64::from(f32::EPSILON) * abs_sum
                + 2.0 * ulp(exact, f64::from(f32::EPSILON));
            assert!(
                (f64::from(y_scaled[row]) - exact).abs() <= tol,
                "case {case} scaled csr row {row}: {} vs {exact}",
                y_scaled[row]
            );
            assert!(
                (f64::from(y_sell[row]) - exact).abs() <= tol,
                "case {case} scaled sell row {row}: {} vs {exact}",
                y_sell[row]
            );
        }
    }
}

// ---------------------------------------------------------------------------
// BLAS-1: odd lengths, remainder tails, cascade boundary, fp16 subnormals
// ---------------------------------------------------------------------------

fn blas1_parity_at_len<T: Scalar>(len: usize, amp: f64, case: u64) {
    let mut rng = rng_for("simd_blas1", case * 131 + len as u64);
    let x: Vec<T> = (0..len).map(|_| T::from_f64(rng.gen_range(-1.0..1.0) * amp)).collect();
    let y: Vec<T> = (0..len).map(|_| T::from_f64(rng.gen_range(-1.0..1.0) * amp)).collect();
    let eps_accum = <T::Accum as Scalar>::epsilon();
    // Scalars exactly representable in fp16, as in proptest_kernels.
    let alpha = [0.5, -1.25, 2.0, 0.375][rng.gen_range(0..4usize)];
    let beta = [0.25, -0.5, 1.5, -2.0][rng.gen_range(0..4usize)];
    // Below the smallest normal of `T` the rounding error is absolute (one
    // subnormal quantum), not relative, so the element-wise bound carries
    // that floor: 2^-24 for fp16, 2^-149 for fp32 (f64 subnormals are far
    // below every tolerance here).
    let subnormal_q = match T::PRECISION {
        Precision::Fp16 => 2.0f64.powi(-24),
        Precision::Fp32 => 2.0f64.powi(-149),
        Precision::Fp64 => 0.0,
    };
    let one_ulp = |m: f64| (T::epsilon() + 4.0 * eps_accum) * m.max(1e-30) + subnormal_q + 1e-300;

    // Reductions against the naive reference.
    let d_new = blas1::dot(&x, &y);
    let d_ref = reference::dot_naive(&x, &y);
    let abs_sum: f64 = x.iter().zip(&y).map(|(a, b)| (a.to_f64() * b.to_f64()).abs()).sum();
    let tol = 4.0 * (len.max(1) as f64) * eps_accum * abs_sum + 1e-300;
    assert!(
        (d_new - d_ref).abs() <= tol,
        "len {len} dot {}: {d_new} vs {d_ref} (tol {tol:e})",
        T::name()
    );
    let (d2a, d2b) = blas1::dot2(&x, &y, &y, &x);
    assert!((d2a - d_new).abs() <= tol, "len {len} dot2.0 {}", T::name());
    assert!((d2b - d_new).abs() <= tol, "len {len} dot2.1 {}", T::name());

    // sum: same single-widening reduction scheme as dot.
    let s_new = blas1::sum(&x);
    let s_ref: f64 = {
        let mut acc = <T::Accum as Scalar>::zero();
        for v in &x {
            acc += v.widen();
        }
        acc.to_f64()
    };
    let abs_x: f64 = x.iter().map(|v| v.to_f64().abs()).sum();
    assert!(
        (s_new - s_ref).abs() <= 4.0 * (len.max(1) as f64) * eps_accum * abs_x + 1e-300,
        "len {len} sum {}: {s_new} vs {s_ref}",
        T::name()
    );

    // norm_inf: exactly the NaN-dropping max fold, whatever the backend.
    let m_new = blas1::norm_inf(&x);
    let m_ref = x.iter().fold(0.0f64, |m, v| {
        let a = v.widen().abs().to_f64();
        if a > m {
            a
        } else {
            m
        }
    });
    assert_eq!(m_new, m_ref, "len {len} norm_inf {}", T::name());

    // axpy and the fused axpy_norm2: identical vector output, bit for bit.
    let mut y_new = y.clone();
    let mut y_ref = y.clone();
    let mut y_fused = y.clone();
    blas1::axpy(alpha, &x, &mut y_new);
    reference::axpy_naive(alpha, &x, &mut y_ref);
    let sq = blas1::axpy_norm2(alpha, &x, &mut y_fused);
    for i in 0..len {
        let (a, b) = (y_new[i].to_f64(), y_ref[i].to_f64());
        let m = (alpha * x[i].to_f64()).abs() + y[i].to_f64().abs();
        assert!((a - b).abs() <= one_ulp(m), "len {len} axpy {} [{i}]: {a} vs {b}", T::name());
        assert_eq!(y_fused[i].to_f64(), a, "len {len} axpy_norm2 vec {} [{i}]", T::name());
    }
    let sq_ref = blas1::dot(&y_new, &y_new);
    assert!(
        (sq - sq_ref).abs() <= 16.0 * (len.max(1) as f64) * eps_accum * sq_ref.max(1e-30),
        "len {len} axpy_norm2 {}: {sq} vs {sq_ref}",
        T::name()
    );

    // waxpby_norm2 against the reference waxpby.
    let mut w_new = vec![T::zero(); len];
    let mut w_ref = vec![T::zero(); len];
    let wsq = blas1::waxpby_norm2(alpha, &x, beta, &y, &mut w_new);
    reference::waxpby_naive(alpha, &x, beta, &y, &mut w_ref);
    for i in 0..len {
        let (a, b) = (w_new[i].to_f64(), w_ref[i].to_f64());
        let m = (alpha * x[i].to_f64()).abs() + (beta * y[i].to_f64()).abs();
        assert!((a - b).abs() <= 2.0 * one_ulp(m), "len {len} waxpby_norm2 {} [{i}]", T::name());
    }
    let wsq_ref = blas1::dot(&w_new, &w_new);
    assert!(
        (wsq - wsq_ref).abs() <= 16.0 * (len.max(1) as f64) * eps_accum * wsq_ref.max(1e-30),
        "len {len} waxpby_norm2 {}",
        T::name()
    );

    // scale (aliased) and scale_into (disjoint): identical outputs.
    let mut s_aliased = x.clone();
    let mut s_refv = x.clone();
    let mut s_into = vec![T::zero(); len];
    blas1::scale(beta, &mut s_aliased);
    reference::scale_naive(beta, &mut s_refv);
    blas1::scale_into(beta, &x, &mut s_into);
    for i in 0..len {
        let (a, b) = (s_aliased[i].to_f64(), s_refv[i].to_f64());
        let m = (beta * x[i].to_f64()).abs();
        assert!((a - b).abs() <= one_ulp(m), "len {len} scale {} [{i}]", T::name());
        assert_eq!(a, s_into[i].to_f64(), "len {len} scale/scale_into {} [{i}]", T::name());
    }

    // hadamard: single product, single narrow on both paths — exact match
    // with the per-element definition.
    let mut z = vec![T::zero(); len];
    blas1::hadamard(&x, &y, &mut z);
    for i in 0..len {
        let want = T::narrow(x[i].widen() * y[i].widen()).to_f64();
        assert_eq!(z[i].to_f64(), want, "len {len} hadamard {} [{i}]", T::name());
    }
}

#[test]
fn blas1_parity_odd_lengths_and_tails() {
    for (case, &len) in LENGTHS.iter().enumerate() {
        blas1_parity_at_len::<f64>(len, 1.0, case as u64);
        blas1_parity_at_len::<f32>(len, 1.0, case as u64);
        blas1_parity_at_len::<f16>(len, 1.0, case as u64);
    }
}

#[test]
fn blas1_parity_extreme_amplitudes() {
    // fp16 subnormal territory (2^-14 ≈ 6.1e-5 is the smallest normal) and
    // near the top of each type's range; the F16C conversion path must
    // handle subnormals identically to the softfloat reference.
    for &len in &[9usize, 31, 100, 4097] {
        blas1_parity_at_len::<f16>(len, 6.0e-5, 100);
        blas1_parity_at_len::<f16>(len, 1.0e-6, 101);
        blas1_parity_at_len::<f16>(len, 1.0e4, 102);
        // High amplitudes are capped so dot products (amp²·n) stay inside
        // the accumulator's range — overflow to ±inf is out of contract.
        blas1_parity_at_len::<f32>(len, 1.0e-38, 103);
        blas1_parity_at_len::<f32>(len, 1.0e15, 104);
        blas1_parity_at_len::<f64>(len, 1.0e-300, 105);
        blas1_parity_at_len::<f64>(len, 1.0e150, 106);
    }
}

#[test]
fn blas1_empty_inputs() {
    let x: Vec<f16> = vec![];
    let y: Vec<f16> = vec![];
    assert_eq!(blas1::dot(&x, &y), 0.0);
    assert_eq!(blas1::norm_inf(&x), 0.0);
    assert_eq!(blas1::sum(&x), 0.0);
    let mut z: Vec<f16> = vec![];
    blas1::hadamard(&x, &y, &mut z);
    let mut w: Vec<f16> = vec![];
    assert_eq!(blas1::waxpby_norm2(1.0, &x, 2.0, &y, &mut w), 0.0);
    let mut e: Vec<f16> = vec![];
    blas1::scale(2.0, &mut e);
    assert_eq!(blas1::axpy_norm2(0.5, &x, &mut e), 0.0);
}

// ---------------------------------------------------------------------------
// Compressed-basis kernels: round-trips and extreme amplitudes
// ---------------------------------------------------------------------------

fn compress_roundtrip_case(len: usize, amp: f64, case: u64) {
    let mut rng = rng_for("simd_compress", case * 17 + len as u64);
    let src: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0) * amp).collect();
    let amax = src.iter().fold(0.0f64, |m, v| m.max(v.abs()));

    // fp16-compressed storage: stored = src / 2^k with |stored| <= 1; the
    // only per-element rounding is one f16 narrowing, so the round-trip
    // error is one fp16 ulp of the element plus one subnormal quantum of
    // the scale (2^k <= 2·amax).
    let mut stored = vec![f16::ZERO; len];
    let scale = blas1::narrow_scaled_into(1.0, &src, &mut stored);
    let mut back = vec![0.0f64; len];
    blas1::widen_scaled_into(scale, &stored, &mut back);
    for i in 0..len {
        let tol = f64::from(f16::EPSILON) * src[i].abs() + 2.0 * amax * 2.0f64.powi(-24) + 1e-300;
        assert!(
            (back[i] - src[i]).abs() <= tol,
            "len {len} amp {amp:e} roundtrip [{i}]: {} vs {} (tol {tol:e})",
            back[i],
            src[i]
        );
    }

    // dot_compressed against the represented values in f64.
    let x: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let d_new = blas1::dot_compressed(&x, &stored, scale);
    let d_ref: f64 = x
        .iter()
        .zip(&stored)
        .map(|(xi, si)| xi * si.to_f64())
        .sum::<f64>()
        * scale;
    let abs_sum: f64 = x
        .iter()
        .zip(&stored)
        .map(|(xi, si)| (xi * si.to_f64()).abs())
        .sum::<f64>()
        * scale.abs();
    let tol = 8.0 * (len.max(1) as f64) * f64::EPSILON * abs_sum + ulp(d_ref, f64::EPSILON);
    assert!(
        (d_new - d_ref).abs() <= tol,
        "len {len} amp {amp:e} dot_compressed: {d_new} vs {d_ref}"
    );

    // axpy_scaled_from against a per-element reference on the represented
    // vector: y += (alpha·scale) · stored.
    let alpha = 0.75f64;
    let y0: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0) * amp.max(1.0)).collect();
    let mut y_new = y0.clone();
    blas1::axpy_scaled_from(alpha, &stored, scale, &mut y_new);
    for i in 0..len {
        let want = y0[i] + alpha * scale * stored[i].to_f64();
        let m = (alpha * scale * stored[i].to_f64()).abs() + y0[i].abs();
        assert!(
            (y_new[i] - want).abs() <= 4.0 * f64::EPSILON * m.max(1e-30) + 1e-300,
            "len {len} amp {amp:e} axpy_scaled_from [{i}]: {} vs {want}",
            y_new[i]
        );
    }
}

#[test]
fn compressed_roundtrip_extreme_amplitudes() {
    // Amplitudes spanning far beyond fp16's exponent range (and f32's): the
    // power-of-two scale absorbs the magnitude, and the coefficient
    // fallback path covers scales outside the f32 accumulator's range.
    for &len in &[1usize, 9, 31, 100, 4097] {
        for (case, &amp) in [1.0, 1.0e-6, 6.0e4, 1.0e38, 1.0e-38, 1.0e300, 1.0e-300]
            .iter()
            .enumerate()
        {
            compress_roundtrip_case(len, amp, case as u64);
        }
    }
}

#[test]
fn same_precision_compress_is_lossless() {
    // S == T storage skips normalisation and stores verbatim.
    let mut rng = rng_for("simd_compress_same", 0);
    for &len in &[7usize, 64, 4097] {
        let src: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0e3..1.0e3) as f32).collect();
        let mut stored = vec![0.0f32; len];
        let scale = blas1::narrow_scaled_into(1.5, &src, &mut stored);
        assert_eq!(scale, 1.5, "len {len}");
        for i in 0..len {
            assert_eq!(stored[i].to_bits(), src[i].to_bits(), "len {len} [{i}]");
        }
    }
}

#[test]
fn zero_vector_compresses_to_zero_scale() {
    let src = vec![0.0f64; 33];
    let mut stored = vec![f16::ZERO; 33];
    let scale = blas1::narrow_scaled_into(2.0, &src, &mut stored);
    assert_eq!(scale, 0.0);
    assert!(stored.iter().all(|v| v.to_f64() == 0.0));
    assert_eq!(blas1::dot_compressed(&src, &stored, scale), 0.0);
}

// ---------------------------------------------------------------------------
// SpMM (multi-RHS) kernels: per-column bitwise parity with single-vector SpMV
// ---------------------------------------------------------------------------

/// Matrix mixing empty rows, 1-entry rows, and rows wide enough (11 nnz)
/// to engage the gather-based SIMD row kernel — each row takes its own path
/// inside one SpMM sweep, and the path choice must be the same for every
/// panel column.
fn mixed_rows_csr(rng: &mut StdRng, n: usize) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        match i % 4 {
            0 => {} // empty row
            1 => coo.push(i, i, rng.gen_range(0.5..1.5)),
            _ => {
                for t in 0..11.min(n) {
                    coo.push(i, (i + t) % n, rng.gen_range(-1.0..1.0));
                }
            }
        }
    }
    coo.to_csr()
}

fn spmm_parity<TA: Scalar, TV: Scalar>(case: u64, k: usize) {
    let mut rng = rng_for("simd_spmm", case * 37 + k as u64);
    let n = rng.gen_range(9..40);
    let a64 = mixed_rows_csr(&mut rng, n);
    let a: CsrMatrix<TA> = a64.to_precision();
    let sell: SellMatrix<TA> = SellMatrix::from_csr(&a, 8);
    let xs: Vec<TV> = (0..n * k).map(|_| TV::from_f64(rng.gen_range(-1.0..1.0))).collect();

    let mut ys = vec![TV::zero(); n * k];
    let mut ys_seq = vec![TV::zero(); n * k];
    let mut ys_par = vec![TV::zero(); n * k];
    spmv_multi(&a, &xs, &mut ys, k);
    spmv_multi_seq(&a, &xs, &mut ys_seq, k);
    spmv_multi_par(&a, &xs, &mut ys_par, k);
    let mut ys_sell = vec![TV::zero(); n * k];
    spmv_sell_multi(&sell, &xs, &mut ys_sell, k);
    for c in 0..k {
        let xcol = &xs[c * n..(c + 1) * n];
        let mut y_csr = vec![TV::zero(); n];
        let mut y_sell = vec![TV::zero(); n];
        spmv_seq(&a, xcol, &mut y_csr);
        spmv_sell_seq(&sell, xcol, &mut y_sell);
        for row in 0..n {
            // Column c of the SpMM is the single-vector SpMV of column c,
            // bit for bit: the SIMD row/group gate depends only on the row.
            assert_eq!(
                ys[c * n + row].to_f64(),
                y_csr[row].to_f64(),
                "case {case} k {k} {}x{} csr col {c} row {row}",
                TA::name(),
                TV::name()
            );
            assert_eq!(
                ys_seq[c * n + row].to_f64(),
                ys[c * n + row].to_f64(),
                "case {case} k {k} seq col {c} row {row}"
            );
            assert_eq!(
                ys_par[c * n + row].to_f64(),
                ys[c * n + row].to_f64(),
                "case {case} k {k} par col {c} row {row}"
            );
            assert_eq!(
                ys_sell[c * n + row].to_f64(),
                y_sell[row].to_f64(),
                "case {case} k {k} {}x{} sell col {c} row {row}",
                TA::name(),
                TV::name()
            );
            if row % 4 == 0 {
                assert_eq!(ys[c * n + row].to_f64(), 0.0, "empty row {row} col {c}");
            }
        }
    }
}

#[test]
fn spmm_columns_match_single_vector_spmv() {
    // Odd widths and the k = 1 degenerate panel; mixed empty/short/SIMD rows.
    for case in 0..4 {
        for &k in &[1usize, 2, 3, 5, 8] {
            spmm_parity::<f64, f64>(case, k);
            spmm_parity::<f32, f64>(case, k);
            spmm_parity::<f16, f32>(case, k);
            spmm_parity::<f16, f16>(case, k);
        }
    }
}

#[test]
fn scaled_spmm_columns_match_single_vector_scaled_spmv() {
    for case in 0..4 {
        for &k in &[1usize, 3, 5] {
            let mut rng = rng_for("simd_spmm_scaled", case * 13 + k as u64);
            let n = rng.gen_range(10..40);
            let a64 = mixed_rows_csr(&mut rng, n);
            let scaled: ScaledCsr<f16> = ScaledCsr::from_f64(&a64);
            let ssell: ScaledSell<f16> = ScaledSell::from_csr_f64(&a64, 8);
            let xs: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
            let mut ys = vec![0.0f32; n * k];
            let mut ys_sell = vec![0.0f32; n * k];
            spmv_scaled_multi(&scaled, &xs, &mut ys, k);
            spmv_scaled_sell_multi(&ssell, &xs, &mut ys_sell, k);
            for c in 0..k {
                let xcol = &xs[c * n..(c + 1) * n];
                let mut y_csr = vec![0.0f32; n];
                let mut y_sell = vec![0.0f32; n];
                spmv_scaled_seq(&scaled, xcol, &mut y_csr);
                spmv_scaled_sell_seq(&ssell, xcol, &mut y_sell);
                for row in 0..n {
                    assert_eq!(
                        ys[c * n + row], y_csr[row],
                        "case {case} k {k} scaled csr col {c} row {row}"
                    );
                    assert_eq!(
                        ys_sell[c * n + row], y_sell[row],
                        "case {case} k {k} scaled sell col {c} row {row}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Panel BLAS-1: per-column bitwise parity with the single-vector kernels
// ---------------------------------------------------------------------------

fn panel_blas1_parity<T: Scalar>(len: usize, k: usize, case: u64) {
    let mut rng = rng_for("simd_panel", case * 71 + (len * 8 + k) as u64);
    let xs: Vec<T> = (0..len * k).map(|_| T::from_f64(rng.gen_range(-1.0..1.0))).collect();
    let ys: Vec<T> = (0..len * k).map(|_| T::from_f64(rng.gen_range(-1.0..1.0))).collect();
    let alphas: Vec<f64> = (0..k).map(|_| [0.5, -1.25, 2.0, 0.375][rng.gen_range(0..4usize)]).collect();

    // The panel kernels are documented per-column loops over the dispatched
    // single-vector kernels (columns are disjoint streams — nothing to
    // amortize), so every column must match bit for bit.
    let dots = blas1::dot_panel(&xs, &ys, k);
    let norms = blas1::norm2_panel(&xs, k);
    let mut axpyed = ys.clone();
    blas1::axpy_panel(&alphas, &xs, &mut axpyed);
    assert_eq!(dots.len(), k);
    assert_eq!(norms.len(), k);
    for c in 0..k {
        let xcol = &xs[c * len..(c + 1) * len];
        let ycol = &ys[c * len..(c + 1) * len];
        assert_eq!(dots[c], blas1::dot(xcol, ycol), "len {len} k {k} dot col {c} {}", T::name());
        assert_eq!(norms[c], blas1::norm2(xcol), "len {len} k {k} norm2 col {c} {}", T::name());
        let mut y_ref = ycol.to_vec();
        blas1::axpy(alphas[c], xcol, &mut y_ref);
        for i in 0..len {
            assert_eq!(
                axpyed[c * len + i].to_f64(),
                y_ref[i].to_f64(),
                "len {len} k {k} axpy col {c} [{i}] {}",
                T::name()
            );
        }
    }
}

#[test]
fn panel_blas1_matches_per_column_kernels() {
    // Odd lengths and tails (as in the single-vector sweep) crossed with odd
    // panel widths, plus the degenerate empty panel.
    for (case, &len) in [0usize, 1, 9, 31, 100, 4097].iter().enumerate() {
        for &k in &[1usize, 2, 3, 5, 8] {
            panel_blas1_parity::<f64>(len, k, case as u64);
            panel_blas1_parity::<f32>(len, k, case as u64);
            panel_blas1_parity::<f16>(len, k, case as u64);
        }
    }
    assert!(blas1::dot_panel::<f64>(&[], &[], 0).is_empty());
    assert!(blas1::norm2_panel::<f64>(&[], 0).is_empty());
}
