//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the subset of the criterion API its bench targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_custom`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up once, the iteration count
//! per sample is calibrated so a sample lasts roughly
//! [`TARGET_SAMPLE_NANOS`], and `sample_size` samples are collected.  The
//! mean / median / minimum per-iteration times are printed to stdout and,
//! when the `F3R_BENCH_JSON` environment variable names a file, appended to
//! it as JSON lines so CI and the repo's `BENCH_*.json` baselines can track
//! the numbers across commits.

#![warn(missing_docs)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches may import either this
/// or `std::hint::black_box`).
pub use std::hint::black_box;

/// Duration each measurement sample aims for, in nanoseconds.
pub const TARGET_SAMPLE_NANOS: u64 = 10_000_000; // 10 ms

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Create an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the closure given to `bench_function`; runs the measurement.
pub struct Bencher<'a> {
    samples: usize,
    result: &'a mut Option<Stats>,
}

/// Collected timing statistics for one benchmark, in ns/iteration.
#[derive(Debug, Clone, Copy)]
struct Stats {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

impl Bencher<'_> {
    /// Measure `routine`, timing calibrated batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: run once, size batches to the target sample
        // duration.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_nanos().max(1) as u64;
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 1_000_000);
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        *self.result = Some(Stats::from_samples(&mut per_iter, iters));
    }

    /// Measure with caller-controlled timing: `routine` receives an iteration
    /// count and returns the total elapsed duration for that many calls.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let once = routine(1).as_nanos().max(1) as u64;
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 1_000_000);
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            per_iter.push(routine(iters).as_nanos() as f64 / iters as f64);
        }
        *self.result = Some(Stats::from_samples(&mut per_iter, iters));
    }
}

impl Stats {
    fn from_samples(per_iter: &mut [f64], iters: u64) -> Stats {
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        Stats {
            mean_ns: mean,
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            samples: per_iter.len(),
            iters_per_sample: iters,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate the group with a throughput so results report bandwidth.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Reduce warm-up time (accepted for API compatibility; the shim's
    /// warm-up is a single calibration call already).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set measurement time (accepted for API compatibility; the shim sizes
    /// samples from [`TARGET_SAMPLE_NANOS`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut result = None;
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: &mut result,
        };
        f(&mut bencher);
        if let Some(stats) = result {
            self.criterion.report(&self.name, &id.id, stats, self.throughput);
        }
        self
    }

    /// Finish the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark (outside any group).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut result = None;
        let mut bencher = Bencher {
            samples: 20,
            result: &mut result,
        };
        f(&mut bencher);
        if let Some(stats) = result {
            self.report("", id, stats, None);
        }
        self
    }

    fn report(&mut self, group: &str, id: &str, stats: Stats, throughput: Option<Throughput>) {
        self.ran += 1;
        let full = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        let bandwidth = match throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gib = bytes as f64 / stats.median_ns * 1e9 / (1u64 << 30) as f64;
                format!("  {gib:>8.2} GiB/s")
            }
            Some(Throughput::Elements(elems)) => {
                let me = elems as f64 / stats.median_ns * 1e3;
                format!("  {me:>8.2} Melem/s")
            }
            None => String::new(),
        };
        println!(
            "bench: {full:<60} median {:>12} ns/iter  mean {:>12} ns  min {:>12} ns{bandwidth}",
            fmt_ns(stats.median_ns),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.min_ns),
        );
        if let Ok(path) = std::env::var("F3R_BENCH_JSON") {
            let line = format!(
                "{{\"group\":{},\"bench\":{},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}{}}}",
                json_str(group),
                json_str(id),
                stats.median_ns,
                stats.mean_ns,
                stats.min_ns,
                stats.samples,
                stats.iters_per_sample,
                match throughput {
                    Some(Throughput::Bytes(b)) => format!(",\"throughput_bytes\":{b}"),
                    Some(Throughput::Elements(e)) => format!(",\"throughput_elements\":{e}"),
                    None => String::new(),
                }
            );
            if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(&path) {
                let _ = writeln!(f, "{line}");
            }
        }
    }

    /// Print a closing summary (called by [`criterion_main!`]).
    pub fn final_summary(&self) {
        println!("bench: {} benchmarks measured", self.ran);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{:.0}", ns)
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Define a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_stats() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut acc = 0u64;
        group.bench_function(BenchmarkId::new("sum", "tiny"), |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        group.finish();
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn iter_custom_is_supported() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(3u64.pow(7));
                }
                start.elapsed()
            })
        });
        assert_eq!(c.ran, 1);
    }
}
