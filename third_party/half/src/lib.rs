//! Minimal, dependency-free stand-in for the `half` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the subset of `half` it actually uses: the [`struct@f16`]
//! binary16 type with correctly rounded (round-to-nearest-even) conversions
//! to and from `f32`/`f64`, basic arithmetic carried out through `f32`
//! intermediates (matching the semantics of the real crate's software
//! fallback), and the handful of associated constants the solvers query.
//!
//! The bit-level conversion routines are standard IEEE 754 binary16 ↔
//! binary32 algorithms covering normals, subnormals, infinities and NaN.
//! The [`mod@slice`] module adds bulk slice conversions that use the F16C /
//! AVX-512 hardware converters when the CPU has them.

#![warn(missing_docs)]

pub mod slice;

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

/// An IEEE 754 binary16 ("half-precision") floating-point number.
///
/// Stored as its raw bit pattern; all arithmetic widens to `f32`, operates
/// there, and rounds back, which is what fp16 hardware with fp32 accumulate
/// units (and the real `half` crate without hardware support) effectively do.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct f16(u16);

/// Convert binary16 bits to the exactly equal binary32 value.
///
/// Uses the branchless magic-multiply rebias: the 15-bit magnitude is shifted
/// into f32 field positions and scaled by 2^112, which fixes up the exponent
/// bias for normals *and* renormalises subnormals exactly (the product of a
/// binary32 subnormal in [2^-136, 2^-126) with 2^112 is exactly
/// representable).  Only the infinity/NaN case needs a (predictable,
/// select-lowerable) branch, so hot widening loops autovectorise.
#[inline(always)]
const fn f16_bits_to_f32_bits(h: u16) -> u32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let magnitude = ((h & 0x7FFF) as u32) << 13;
    // 0x7780_0000 is 2^112 as binary32.
    let scaled = f32::from_bits(magnitude) * f32::from_bits(0x7780_0000);
    let bits = if (h & 0x7C00) == 0x7C00 {
        // Infinity (payload 0) or NaN (payload preserved, forced quiet).
        0x7F80_0000 | (0x0040_0000 * ((h & 0x03FF) != 0) as u32) | (((h & 0x03FF) as u32) << 13)
    } else {
        scaled.to_bits()
    };
    sign | bits
}

/// Round a binary32 value to binary16 (round-to-nearest, ties-to-even).
///
/// Branch-free scale-based rounding (the standard trick used by software
/// fp16 libraries): the magnitude is scaled so that the binary32 addition
/// `bias + base` performs the round-to-nearest-even at exactly the binary16
/// precision boundary, for normals and subnormals alike.  Overflow falls out
/// as the exponent saturating to the infinity encoding; only NaN needs a
/// (select-lowerable) conditional, so hot narrowing loops autovectorise.
#[inline(always)]
const fn f32_bits_to_f16_bits(x: u32) -> u16 {
    let sign = x & 0x8000_0000;
    let shl1 = x.wrapping_add(x); // drops the sign, doubles the exponent field
    // |x| * 2^112 * 2^-110: saturates overflowing values to infinity while
    // keeping everything else exact (= |x| * 4).
    let scale_to_inf = f32::from_bits(0x7780_0000); // 2^112
    let scale_to_zero = f32::from_bits(0x0880_0000); // 2^-110
    let base = (f32::from_bits(x & 0x7FFF_FFFF) * scale_to_inf) * scale_to_zero;
    // The bias positions |x|'s significand so that float addition rounds it
    // to 10 fraction bits (clamped for the subnormal range).
    let mut bias = shl1 & 0xFF00_0000;
    if bias < 0x7100_0000 {
        bias = 0x7100_0000;
    }
    let rounded = f32::from_bits((bias >> 1) + 0x0780_0000) + base;
    let bits = rounded.to_bits();
    let exp_bits = (bits >> 13) & 0x7C00;
    let man_bits = bits & 0x0FFF;
    let nonsign = exp_bits + man_bits;
    // NaN input (exponent all ones, nonzero mantissa): force a quiet NaN.
    let magnitude = if shl1 > 0xFF00_0000 { 0x7E00 } else { nonsign };
    ((sign >> 16) | magnitude) as u16
}

/// Round a binary64 value to binary16 (round-to-nearest, ties-to-even),
/// avoiding the double rounding of going through `f32` first.
#[inline]
fn f64_to_f16_bits(v: f64) -> u16 {
    let x = v.to_bits();
    let sign = ((x >> 48) & 0x8000) as u16;
    let abs = x & 0x7FFF_FFFF_FFFF_FFFF;
    if abs >= 0x7FF0_0000_0000_0000 {
        return if abs > 0x7FF0_0000_0000_0000 { sign | 0x7E00 } else { sign | 0x7C00 };
    }
    let e64 = (abs >> 52) as i32;
    let man_full = (abs & 0x000F_FFFF_FFFF_FFFF) | if e64 == 0 { 0 } else { 0x0010_0000_0000_0000 };
    let e16 = e64 - 1023 + 15;
    if e16 >= 0x1F {
        return sign | 0x7C00;
    }
    if e16 <= 0 {
        let shift = (43 - e16) as u32;
        if shift > 54 {
            return sign;
        }
        let kept = man_full >> shift;
        let rem = man_full & ((1u64 << shift) - 1);
        let half = 1u64 << (shift - 1);
        let round_up = rem > half || (rem == half && (kept & 1) == 1);
        return sign | (kept + round_up as u64) as u16;
    }
    let base = ((e16 as u64) << 10) | ((man_full >> 42) & 0x03FF);
    let rem = man_full & 0x3FF_FFFF_FFFF;
    let half = 0x200_0000_0000u64;
    let round_up = rem > half || (rem == half && (base & 1) == 1);
    sign | (base + round_up as u64) as u16
}

impl f16 {
    /// Machine epsilon: 2⁻¹⁰, the distance between 1.0 and the next value.
    pub const EPSILON: f16 = f16(0x1400);
    /// Largest finite value: 65504.
    pub const MAX: f16 = f16(0x7BFF);
    /// Smallest finite value: −65504.
    pub const MIN: f16 = f16(0xFBFF);
    /// Smallest positive normal value: 2⁻¹⁴.
    pub const MIN_POSITIVE: f16 = f16(0x0400);
    /// Positive infinity.
    pub const INFINITY: f16 = f16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: f16 = f16(0xFC00);
    /// Not a number.
    pub const NAN: f16 = f16(0x7E00);
    /// Positive zero.
    pub const ZERO: f16 = f16(0x0000);
    /// One.
    pub const ONE: f16 = f16(0x3C00);

    /// Round an `f32` into binary16 (round-to-nearest-even).
    #[inline]
    #[must_use]
    pub const fn from_f32(value: f32) -> Self {
        f16(f32_bits_to_f16_bits(value.to_bits()))
    }

    /// Round an `f64` into binary16 (round-to-nearest-even, single rounding).
    #[inline]
    #[must_use]
    pub fn from_f64(value: f64) -> Self {
        f16(f64_to_f16_bits(value))
    }

    /// Widen to `f32` (exact).
    #[inline]
    #[must_use]
    pub const fn to_f32(self) -> f32 {
        f32::from_bits(f16_bits_to_f32_bits(self.0))
    }

    /// Widen to `f64` (exact).
    #[inline]
    #[must_use]
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// Construct from the raw bit pattern.
    #[inline]
    #[must_use]
    pub const fn from_bits(bits: u16) -> Self {
        f16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// `true` if the value is neither infinite nor NaN.
    #[inline]
    #[must_use]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// `true` if the value is NaN.
    #[inline]
    #[must_use]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// `true` if the sign bit is set (including −0 and NaN with sign).
    #[inline]
    #[must_use]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    #[must_use]
    pub fn abs(self) -> Self {
        f16(self.0 & 0x7FFF)
    }
}

impl From<f16> for f32 {
    #[inline]
    fn from(v: f16) -> f32 {
        v.to_f32()
    }
}

impl From<f16> for f64 {
    #[inline]
    fn from(v: f16) -> f64 {
        v.to_f64()
    }
}

impl PartialEq for f16 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for f16 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! arith_via_f32 {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for f16 {
            type Output = f16;
            #[inline]
            fn $method(self, rhs: f16) -> f16 {
                f16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for f16 {
            #[inline]
            fn $assign_method(&mut self, rhs: f16) {
                *self = *self $op rhs;
            }
        }
    };
}

arith_via_f32!(Add, add, AddAssign, add_assign, +);
arith_via_f32!(Sub, sub, SubAssign, sub_assign, -);
arith_via_f32!(Mul, mul, MulAssign, mul_assign, *);
arith_via_f32!(Div, div, DivAssign, div_assign, /);
arith_via_f32!(Rem, rem, RemAssign, rem_assign, %);

use core::ops::RemAssign;

impl Neg for f16 {
    type Output = f16;
    #[inline]
    fn neg(self) -> f16 {
        f16(self.0 ^ 0x8000)
    }
}

impl fmt::Debug for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.to_f32(), f)
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, 65504.0, -0.25, 5.9604645e-8] {
            let h = f16::from_f32(v);
            assert_eq!(h.to_f32(), v, "{v}");
        }
    }

    #[test]
    fn constants_match_ieee() {
        assert_eq!(f16::EPSILON.to_f64(), 2.0_f64.powi(-10));
        assert_eq!(f16::MAX.to_f64(), 65504.0);
        assert_eq!(f16::MIN_POSITIVE.to_f64(), 2.0_f64.powi(-14));
        assert_eq!(f16::ONE.to_f32(), 1.0);
        assert_eq!(f16::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1 and 1 + 2^-10: ties-to-even
        // keeps 1.0.
        assert_eq!(f16::from_f32(1.0 + 2.0_f32.powi(-11)).to_f32(), 1.0);
        assert_eq!(f16::from_f64(1.0 + 2.0_f64.powi(-11)).to_f64(), 1.0);
        // 1 + 3*2^-11 is halfway between 1 + 2^-10 and 1 + 2^-9: ties-to-even
        // rounds up to the even mantissa.
        assert_eq!(
            f16::from_f64(1.0 + 3.0 * 2.0_f64.powi(-11)).to_f64(),
            1.0 + 2.0 * 2.0_f64.powi(-10)
        );
    }

    #[test]
    fn overflow_and_specials() {
        assert_eq!(f16::from_f32(1e6), f16::INFINITY);
        assert_eq!(f16::from_f32(-1e6), f16::NEG_INFINITY);
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!(!f16::INFINITY.is_finite());
        assert!(f16::MAX.is_finite());
        // 65520 is the rounding boundary to infinity; 65519 rounds to 65504.
        assert_eq!(f16::from_f64(65519.0).to_f64(), 65504.0);
        assert_eq!(f16::from_f64(65520.0), f16::INFINITY);
    }

    #[test]
    fn subnormals() {
        let smallest = 2.0_f64.powi(-24);
        assert_eq!(f16::from_f64(smallest).to_f64(), smallest);
        // Half the smallest subnormal ties to zero (even).
        assert_eq!(f16::from_f64(smallest / 2.0).to_f64(), 0.0);
        // Slightly above half rounds up to the smallest subnormal.
        assert_eq!(f16::from_f64(smallest * 0.51).to_f64(), smallest);
        // A subnormal f32 survives the conversion chain.
        let sub = 3.0 * 2.0_f64.powi(-24);
        assert_eq!(f16::from_f64(sub).to_f64(), sub);
    }

    #[test]
    fn arithmetic_goes_through_f32() {
        let a = f16::from_f32(0.1);
        let b = f16::from_f32(0.2);
        let c = a + b;
        assert!((c.to_f32() - 0.3).abs() < 1e-3);
        assert_eq!((-f16::ONE).to_f32(), -1.0);
        let mut d = f16::ONE;
        d += f16::ONE;
        assert_eq!(d.to_f32(), 2.0);
    }

    /// Slow, obviously-correct round-to-nearest-even f32 → f16 used to
    /// validate the branch-free production conversion.
    fn narrow_reference(v: f32) -> u16 {
        let x = v.to_bits();
        let sign = ((x >> 16) & 0x8000) as u16;
        let abs = x & 0x7FFF_FFFF;
        if abs > 0x7F80_0000 {
            return sign | 0x7E00; // NaN
        }
        if abs == 0x7F80_0000 {
            return sign | 0x7C00; // infinity
        }
        let e32 = (abs >> 23) as i32;
        let man_full = (abs & 0x007F_FFFF) | if e32 == 0 { 0 } else { 0x0080_0000 };
        let e16 = e32 - 127 + 15;
        if e16 >= 0x1F {
            return sign | 0x7C00;
        }
        if e16 <= 0 {
            let shift = (14 - e16) as u32;
            if shift > 25 {
                return sign;
            }
            let kept = man_full >> shift;
            let rem = u64::from(man_full) & ((1u64 << shift) - 1);
            let half = 1u64 << (shift - 1);
            let round_up = rem > half || (rem == half && (kept & 1) == 1);
            return sign | (kept + u32::from(round_up)) as u16;
        }
        let base = ((e16 as u32) << 10) | ((man_full >> 13) & 0x03FF);
        let rem = man_full & 0x1FFF;
        let round_up = rem > 0x1000 || (rem == 0x1000 && (base & 1) == 1);
        sign | (base + u32::from(round_up)) as u16
    }

    #[test]
    fn branch_free_narrow_matches_reference_across_f32_sweep() {
        // Dense sweep of the whole f32 bit space (prime stride so every
        // exponent and many mantissa/rounding patterns are hit) plus the
        // neighbourhood of every f16-relevant boundary.
        let mut bits = 0u32;
        loop {
            let v = f32::from_bits(bits);
            let expect = narrow_reference(v);
            let got = f16::from_f32(v).to_bits();
            if v.is_nan() {
                assert!(got & 0x7C00 == 0x7C00 && got & 0x03FF != 0, "NaN for {bits:#010x}");
            } else {
                assert_eq!(got, expect, "bits {bits:#010x} ({v:e})");
            }
            let (next, overflow) = bits.overflowing_add(0x0001_0007);
            if overflow {
                break;
            }
            bits = next;
        }
        // Every finite f16 value ± a few ulps of f32 around it.
        for h in 0..=0xFFFFu16 {
            let f = f16::from_bits(h);
            if !f.is_finite() {
                continue;
            }
            let fb = f.to_f32().to_bits();
            for delta in -3i32..=3 {
                let nb = fb.wrapping_add(delta as u32);
                let v = f32::from_bits(nb);
                if v.is_nan() {
                    continue;
                }
                assert_eq!(
                    f16::from_f32(v).to_bits(),
                    narrow_reference(v),
                    "near {h:#06x} delta {delta}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_f32_round_trip_is_identity_on_finite_f16() {
        // Every finite binary16 bit pattern must survive widening + rounding.
        for bits in 0..=0xFFFFu16 {
            let h = f16::from_bits(bits);
            if h.is_finite() {
                assert_eq!(f16::from_f32(h.to_f32()).to_bits(), bits, "bits {bits:#06x}");
                assert_eq!(f16::from_f64(h.to_f64()).to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }
}
