//! Bulk `f16` ↔ `f32`/`f64` slice conversions with hardware acceleration.
//!
//! The scalar conversions in the crate root cost tens of cycles per element,
//! which makes every fp16 sweep conversion-bound instead of bandwidth-bound.
//! This module provides slice-granular entry points that use the F16C
//! (`vcvtph2ps`/`vcvtps2ph`) and AVX-512F (`vcvtph2ps zmm`) instructions when
//! the CPU has them, falling back to the scalar routines otherwise.
//!
//! # Semantics
//!
//! For every finite or infinite input the dispatched conversions are
//! **bit-identical** to the scalar [`f16::to_f32`](crate::f16::to_f32) /
//! [`f16::to_f64`](crate::f16::to_f64) /
//! [`f16::from_f32`](crate::f16::from_f32) routines: widening is exact and
//! narrowing is a single
//! round-to-nearest-even, on hardware and in software alike (the agreement is
//! checked exhaustively in this module's tests and in `f3r-simd`'s
//! `f16c_agreement` integration test).  NaNs stay NaNs in every tier, but the
//! *payload* of a narrowed NaN may differ between tiers (the software
//! narrowing canonicalises to `0x7E00`, `vcvtps2ph` propagates truncated
//! payloads).  There is deliberately **no** bulk `f64 → f16` entry point:
//! hardware offers no single-rounding path (`vcvtpd2ps` + `vcvtps2ph` double
//! rounds), so callers must keep using [`f16::from_f64`](crate::f16::from_f64)
//! per element.
//!
//! # Tier selection
//!
//! The implementation tier is resolved once per process, on first use, from
//! the `F3R_KERNEL_BACKEND` environment variable (`scalar` forces the scalar
//! tier; `avx2` caps at the 256-bit F16C tier; `avx512`/`auto`/unset pick the
//! widest supported tier) and the CPU features reported by
//! `is_x86_feature_detected!`.  [`force_scalar`] lets the `f3r-simd` dispatch
//! layer pin the scalar tier programmatically before first use; after first
//! use the tier is latched so a process never mixes tiers mid-run.

use crate::f16;
use core::sync::atomic::{AtomicU8, Ordering};

/// Unresolved sentinel for the tier latch.
const TIER_UNSET: u8 = 0;
/// Scalar software conversions only.
const TIER_SCALAR: u8 = 1;
/// 256-bit F16C conversions (requires the `f16c` CPU feature).
const TIER_F16C: u8 = 2;
/// 512-bit conversions (requires `avx512f` in addition to `f16c`).
const TIER_AVX512: u8 = 3;

/// Latched implementation tier; `TIER_UNSET` until first use.  Both racing
/// initialisers compute the same value, so a relaxed race is benign.
static TIER: AtomicU8 = AtomicU8::new(TIER_UNSET);

/// Force the scalar conversion tier for the rest of the process.
///
/// Called by the `f3r-simd` dispatch layer when the kernel backend resolves
/// to scalar (programmatically or via `F3R_KERNEL_BACKEND=scalar`), so the
/// conversion tier and the kernel backend stay consistent.  Has no effect if
/// a SIMD tier was already latched by an earlier conversion call.
pub fn force_scalar() {
    let _ = TIER.compare_exchange(TIER_UNSET, TIER_SCALAR, Ordering::Relaxed, Ordering::Relaxed);
}

/// The latched tier, resolving (and latching) it on first call.
#[inline]
fn tier() -> u8 {
    let t = TIER.load(Ordering::Relaxed);
    if t != TIER_UNSET {
        return t;
    }
    let resolved = resolve_tier();
    TIER.store(resolved, Ordering::Relaxed);
    resolved
}

/// Widest tier the CPU supports, capped by `F3R_KERNEL_BACKEND`.
fn resolve_tier() -> u8 {
    let cap = match std::env::var("F3R_KERNEL_BACKEND") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "scalar" => TIER_SCALAR,
            "avx2" => TIER_F16C,
            // Unknown values behave like "auto"; the f3r-simd layer owns the
            // user-facing diagnostics for the variable.
            _ => TIER_AVX512,
        },
        Err(_) => TIER_AVX512,
    };
    cap.min(detected_tier())
}

#[cfg(target_arch = "x86_64")]
fn detected_tier() -> u8 {
    if is_x86_feature_detected!("f16c") {
        if is_x86_feature_detected!("avx512f") {
            TIER_AVX512
        } else {
            TIER_F16C
        }
    } else {
        TIER_SCALAR
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detected_tier() -> u8 {
    TIER_SCALAR
}

/// Name of the latched conversion tier, for diagnostics and bench metadata.
pub fn tier_name() -> &'static str {
    match tier() {
        TIER_F16C => "f16c",
        TIER_AVX512 => "avx512",
        _ => "scalar",
    }
}

/// Widen `src` into `dst` element by element (`f16 → f32`, exact).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn widen_slice(src: &[f16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen_slice: length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        let t = tier();
        if t >= TIER_F16C {
            // SAFETY: `tier()` only returns TIER_F16C/TIER_AVX512 after
            // `is_x86_feature_detected!("f16c")` (and "avx512f" for the
            // 512-bit tier) reported the features at runtime.
            unsafe {
                if t == TIER_AVX512 {
                    x86::widen_avx512(src, dst);
                } else {
                    x86::widen_f16c(src, dst);
                }
            }
            return;
        }
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

/// Widen `src` into `dst` element by element (`f16 → f64`, exact).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn widen_slice_f64(src: &[f16], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "widen_slice_f64: length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if tier() >= TIER_F16C {
            // SAFETY: `tier()` only returns a SIMD tier after
            // `is_x86_feature_detected!("f16c")` reported F16C at runtime
            // (the f64 path uses 256-bit F16C conversions in both tiers).
            unsafe { x86::widen_f64_f16c(src, dst) };
            return;
        }
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_f64();
    }
}

/// Narrow `src` into `dst` element by element (`f32 → f16`, one
/// round-to-nearest-even per element).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn narrow_slice(src: &[f32], dst: &mut [f16]) {
    assert_eq!(src.len(), dst.len(), "narrow_slice: length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        let t = tier();
        if t >= TIER_F16C {
            // SAFETY: `tier()` only returns TIER_F16C/TIER_AVX512 after
            // `is_x86_feature_detected!("f16c")` (and "avx512f" for the
            // 512-bit tier) reported the features at runtime.
            unsafe {
                if t == TIER_AVX512 {
                    x86::narrow_avx512(src, dst);
                } else {
                    x86::narrow_f16c(src, dst);
                }
            }
            return;
        }
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = f16::from_f32(*s);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! F16C / AVX-512F conversion loops.  All functions here are `unsafe fn`
    //! gated on `#[target_feature]`; callers must have verified the matching
    //! CPU features at runtime (done once in [`super::tier`]).

    use crate::f16;
    use core::arch::x86_64::*;

    /// `f16` is `#[repr(transparent)]` over `u16`, so a `&[f16]` is layout-
    /// compatible with a `*const u16` of the same length.
    #[inline(always)]
    fn u16_ptr(s: &[f16]) -> *const u16 {
        s.as_ptr().cast::<u16>()
    }

    #[target_feature(enable = "f16c")]
    pub(super) unsafe fn widen_f16c(src: &[f16], dst: &mut [f32]) {
        let n = src.len();
        let sp = u16_ptr(src);
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        // SAFETY (loads/stores): i + 8 <= n == dst.len() keeps every unaligned
        // 128-bit load and 256-bit store inside the slices.
        while i + 8 <= n {
            let h = _mm_loadu_si128(sp.add(i).cast::<__m128i>());
            _mm256_storeu_ps(dp.add(i), _mm256_cvtph_ps(h));
            i += 8;
        }
        for j in i..n {
            dst[j] = src[j].to_f32();
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn widen_avx512(src: &[f16], dst: &mut [f32]) {
        let n = src.len();
        let sp = u16_ptr(src);
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        // SAFETY: i + 16 <= n keeps every 256-bit load / 512-bit store in
        // bounds; the sub-16 remainder reuses the F16C loop, whose feature is
        // implied by the runtime check that selected this tier.
        while i + 16 <= n {
            let h = _mm256_loadu_si256(sp.add(i).cast::<__m256i>());
            _mm512_storeu_ps(dp.add(i).cast::<f32>(), _mm512_cvtph_ps(h));
            i += 16;
        }
        widen_f16c(&src[i..], &mut dst[i..]);
    }

    #[target_feature(enable = "f16c")]
    pub(super) unsafe fn widen_f64_f16c(src: &[f16], dst: &mut [f64]) {
        let n = src.len();
        let sp = u16_ptr(src);
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        // SAFETY: i + 8 <= n bounds the 128-bit load and both 256-bit stores.
        // Both conversion steps (f16→f32, f32→f64) are exact widenings, so
        // the result equals the scalar `to_f64` bit for bit.
        while i + 8 <= n {
            let s = _mm256_cvtph_ps(_mm_loadu_si128(sp.add(i).cast::<__m128i>()));
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(s));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(s));
            _mm256_storeu_pd(dp.add(i), lo);
            _mm256_storeu_pd(dp.add(i + 4), hi);
            i += 8;
        }
        for j in i..n {
            dst[j] = src[j].to_f64();
        }
    }

    #[target_feature(enable = "f16c")]
    pub(super) unsafe fn narrow_f16c(src: &[f32], dst: &mut [f16]) {
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr().cast::<u16>();
        let mut i = 0;
        // SAFETY: i + 8 <= n bounds the 256-bit load and 128-bit store.
        // _MM_FROUND_TO_NEAREST_INT selects round-to-nearest-even, matching
        // the scalar `from_f32` on every non-NaN input.
        while i + 8 <= n {
            let v = _mm256_loadu_ps(sp.add(i));
            let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
            _mm_storeu_si128(dp.add(i).cast::<__m128i>(), h);
            i += 8;
        }
        for j in i..n {
            dst[j] = f16::from_f32(src[j]);
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn narrow_avx512(src: &[f32], dst: &mut [f16]) {
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr().cast::<u16>();
        let mut i = 0;
        // SAFETY: i + 16 <= n bounds the 512-bit load and 256-bit store; the
        // remainder reuses the F16C loop (feature implied by this tier).
        while i + 16 <= n {
            let v = _mm512_loadu_ps(sp.add(i).cast::<f32>());
            let h = _mm512_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
            _mm256_storeu_si256(dp.add(i).cast::<__m256i>(), h);
            i += 16;
        }
        narrow_f16c(&src[i..], &mut dst[i..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All 65536 f16 bit patterns widen (f32 and f64) identically to the
    /// scalar conversions, through whatever tier this process latched.
    #[test]
    fn widen_slice_matches_scalar_exhaustively() {
        let src: Vec<f16> = (0..=0xFFFFu16).map(f16::from_bits).collect();
        let mut wide32 = vec![0.0f32; src.len()];
        let mut wide64 = vec![0.0f64; src.len()];
        widen_slice(&src, &mut wide32);
        widen_slice_f64(&src, &mut wide64);
        for (i, h) in src.iter().enumerate() {
            assert_eq!(wide32[i].to_bits(), h.to_f32().to_bits(), "bits {i:#06x}");
            assert_eq!(wide64[i].to_bits(), h.to_f64().to_bits(), "bits {i:#06x}");
        }
    }

    /// Prime-stride sweep of the f32 bit space: dispatched narrowing matches
    /// the scalar round-to-nearest-even (NaNs stay NaN but payloads may
    /// differ between tiers, so they are only checked for NaN-ness).
    #[test]
    fn narrow_slice_matches_scalar_across_f32_sweep() {
        let mut bits = 0u32;
        let mut src = Vec::new();
        loop {
            src.push(f32::from_bits(bits));
            let (next, overflow) = bits.overflowing_add(0x0001_000F);
            if overflow {
                break;
            }
            bits = next;
        }
        let mut dst = vec![f16::ZERO; src.len()];
        narrow_slice(&src, &mut dst);
        for (i, v) in src.iter().enumerate() {
            if v.is_nan() {
                assert!(dst[i].is_nan(), "NaN for {:#010x}", v.to_bits());
            } else {
                assert_eq!(dst[i].to_bits(), f16::from_f32(*v).to_bits(), "{:#010x}", v.to_bits());
            }
        }
    }

    /// Remainder tails (lengths that are not multiples of the vector width)
    /// are converted too, and nothing outside the slice is touched.
    #[test]
    fn odd_lengths_and_tails() {
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33] {
            let src: Vec<f16> = (0..n).map(|i| f16::from_f32(i as f32 * 0.37 - 3.0)).collect();
            let mut dst = vec![0.0f32; n];
            widen_slice(&src, &mut dst);
            let mut back = vec![f16::ZERO; n];
            narrow_slice(&dst, &mut back);
            for i in 0..n {
                assert_eq!(dst[i], src[i].to_f32(), "n={n} i={i}");
                assert_eq!(back[i].to_bits(), src[i].to_bits(), "n={n} i={i}");
            }
        }
    }
}
