//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the subset of `rand` it uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`] and sampled via
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64 —
//! not the ChaCha12 generator of the real crate, but deterministic,
//! well-distributed and more than adequate for the reproducible test-problem
//! generation this workspace needs.  Streams differ from the real `rand`, so
//! seeds produce different (but still reproducible) matrices.

#![warn(missing_docs)]

use core::ops::Range;

/// Random number generators.
pub mod rngs {
    /// The workspace's standard seeded generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical way to seed xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self;
}

impl SampleUniform for usize {
    #[inline]
    fn sample_range(rng: &mut StdRng, low: usize, high: usize) -> usize {
        assert!(low < high, "gen_range: empty range");
        let span = (high - low) as u64;
        // Multiply-shift range reduction (Lemire); bias is negligible for the
        // test-problem sizes used here.
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        low + hi as usize
    }
}

impl SampleUniform for u64 {
    #[inline]
    fn sample_range(rng: &mut StdRng, low: u64, high: u64) -> u64 {
        assert!(low < high, "gen_range: empty range");
        let span = high - low;
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        low + hi
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range(rng: &mut StdRng, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range(rng: &mut StdRng, low: f32, high: f32) -> f32 {
        f64::sample_range(rng, f64::from(low), f64::from(high)) as f32
    }
}

/// The sampling interface used by the workspace's problem generators.
pub trait Rng {
    /// Sample uniformly from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
}

impl Rng for StdRng {
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_and_seed_dependent() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        assert!(samples.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let signed: Vec<f64> = (0..10_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert!(signed.iter().all(|&v| (-1.0..1.0).contains(&v)));
        assert!(signed.iter().any(|&v| v < -0.5) && signed.iter().any(|&v| v > 0.5));
    }

    #[test]
    fn integer_ranges_cover_their_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
